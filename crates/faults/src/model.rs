//! Fault models: which net, which bit, what kind of damage, and when.
//!
//! A [`Fault`] is the reproducible unit of a campaign: a named
//! [`InjectionSite`] (a datapath net of Fig. 2/Fig. 3), a bit position, a
//! [`FaultKind`] and a seed. Stuck-at faults are permanent — the bit reads
//! the forced value on every event at the site — while a
//! [`FaultKind::Transient`] strikes exactly once, at an event index
//! derived deterministically from the seed (a single-event upset). Every
//! fault is applied as a raw-code mask on the site's stored two's
//! complement pattern, so a campaign row is fully reproducible from its
//! `(site, bit, kind, seed)` tuple plus the unit configuration.

use std::sync::atomic::{AtomicU64, Ordering};

/// A named net of the NACU datapath where a fault can be injected.
///
/// The LUT sites address one coefficient-ROM entry (carried separately in
/// [`Fault::entry`]); the remaining sites are dynamic nets whose events
/// are counted per evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum InjectionSite {
    /// The stored slope word `m₁` of one coefficient-ROM entry.
    LutSlope,
    /// The stored bias word `q` of one coefficient-ROM entry.
    LutBias,
    /// The MAC's slope operand latch (port A of the Fig. 2 multiplier).
    MacOperandA,
    /// The MAC's magnitude operand latch (port B of the multiplier).
    MacOperandB,
    /// The MAC's widened accumulator register (pre-round sum).
    MacAccumulator,
    /// The Fig. 3 bias-transform output word feeding the MAC bias port.
    BiasOut,
    /// The σ output register (post-round, pre-saturation) — also the exp
    /// path's divider operand register.
    SigmaOut,
}

impl InjectionSite {
    /// Every injectable site, in campaign sweep order.
    #[must_use]
    pub fn all() -> [InjectionSite; 7] {
        [
            InjectionSite::LutSlope,
            InjectionSite::LutBias,
            InjectionSite::MacOperandA,
            InjectionSite::MacOperandB,
            InjectionSite::MacAccumulator,
            InjectionSite::BiasOut,
            InjectionSite::SigmaOut,
        ]
    }

    /// True for the coefficient-ROM sites that address a LUT entry.
    #[must_use]
    pub fn is_lut(self) -> bool {
        matches!(self, InjectionSite::LutSlope | InjectionSite::LutBias)
    }

    /// Short stable name for reports and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            InjectionSite::LutSlope => "lut_slope",
            InjectionSite::LutBias => "lut_bias",
            InjectionSite::MacOperandA => "mac_a",
            InjectionSite::MacOperandB => "mac_b",
            InjectionSite::MacAccumulator => "mac_acc",
            InjectionSite::BiasOut => "bias_out",
            InjectionSite::SigmaOut => "sigma_out",
        }
    }
}

impl std::fmt::Display for InjectionSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What the fault does to its bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The bit reads 0 on every event (a short to ground).
    StuckAt0,
    /// The bit reads 1 on every event (a short to supply).
    StuckAt1,
    /// The bit flips on exactly one event — the single-event upset. The
    /// struck event index is `seed`-derived (see
    /// [`Fault::transient_strike`]).
    Transient,
}

impl FaultKind {
    /// Short stable name for reports and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::StuckAt0 => "stuck_at_0",
            FaultKind::StuckAt1 => "stuck_at_1",
            FaultKind::Transient => "transient",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Transient strikes land within this many events of the site — the
/// deterministic "campaign window" a seeded single-event upset is drawn
/// from. Sweeps that want to observe a transient must generate at least
/// this many events at its site.
pub const TRANSIENT_WINDOW: u64 = 256;

/// One reproducible fault: `(site, bit, kind, seed)` plus the ROM entry
/// for LUT sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// The net the fault lives on.
    pub site: InjectionSite,
    /// Coefficient-ROM entry for LUT sites; ignored (use `None`) for
    /// dynamic nets.
    pub entry: Option<usize>,
    /// Bit position within the site's word, 0 = LSB.
    pub bit: u32,
    /// Stuck-at or transient.
    pub kind: FaultKind,
    /// Seed for timing a transient strike; stuck-at faults ignore it.
    pub seed: u64,
}

impl Fault {
    /// A permanent stuck-at fault on a dynamic net.
    #[must_use]
    pub fn stuck(site: InjectionSite, bit: u32, value: bool) -> Self {
        Self {
            site,
            entry: None,
            bit,
            kind: if value {
                FaultKind::StuckAt1
            } else {
                FaultKind::StuckAt0
            },
            seed: 0,
        }
    }

    /// A permanent stuck-at fault on one coefficient-ROM word.
    #[must_use]
    pub fn stuck_lut(site: InjectionSite, entry: usize, bit: u32, value: bool) -> Self {
        assert!(site.is_lut(), "stuck_lut takes a LUT site, got {site}");
        Self {
            entry: Some(entry),
            ..Self::stuck(site, bit, value)
        }
    }

    /// A seeded single-event upset on a dynamic net.
    #[must_use]
    pub fn transient(site: InjectionSite, bit: u32, seed: u64) -> Self {
        Self {
            site,
            entry: None,
            bit,
            kind: FaultKind::Transient,
            seed,
        }
    }

    /// The event index (0-based, within [`TRANSIENT_WINDOW`]) at which a
    /// transient fault strikes — a pure function of the `(site, bit,
    /// seed)` tuple, so campaigns replay exactly.
    #[must_use]
    pub fn transient_strike(&self) -> u64 {
        let salt = (self.site.name().len() as u64) << 32 | u64::from(self.bit);
        splitmix64(self.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % TRANSIENT_WINDOW
    }

    /// Applies the fault's mask to a stored pattern of `bits` width,
    /// keeping two's-complement sign extension. Used directly for
    /// permanent ROM corruption; dynamic sites go through
    /// [`FaultPlan::tap`] so transients can count events.
    #[must_use]
    pub fn corrupt_word(&self, raw: i64, bits: u32) -> i64 {
        apply_mask(raw, bits, self.bit, self.kind)
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.entry {
            Some(entry) => write!(
                f,
                "{}[{entry}] bit {} {} (seed {})",
                self.site, self.bit, self.kind, self.seed
            ),
            None => write!(
                f,
                "{} bit {} {} (seed {})",
                self.site, self.bit, self.kind, self.seed
            ),
        }
    }
}

/// SplitMix64 — the standard seed scrambler (Steele et al.), used to turn
/// a campaign seed into a strike index without a RNG dependency.
#[must_use]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Masks `raw` down to `bits`, applies the bit operation, sign-extends
/// back — exactly how a stuck/flipped wire corrupts a stored word.
#[must_use]
fn apply_mask(raw: i64, bits: u32, bit: u32, kind: FaultKind) -> i64 {
    let bits = bits.min(63);
    let bit = bit.min(bits.saturating_sub(1));
    let mask = (1_i64 << bits) - 1;
    let mut pattern = raw & mask;
    pattern = match kind {
        FaultKind::StuckAt0 => pattern & !(1_i64 << bit),
        FaultKind::StuckAt1 => pattern | (1_i64 << bit),
        FaultKind::Transient => pattern ^ (1_i64 << bit),
    };
    if pattern & (1_i64 << (bits - 1)) != 0 {
        pattern - (1_i64 << bits)
    } else {
        pattern
    }
}

/// One armed fault plus its per-unit event counter (transients need to
/// know *which* event at the site they strike).
#[derive(Debug)]
struct Injector {
    fault: Fault,
    strike: u64,
    events: AtomicU64,
}

impl Injector {
    fn new(fault: Fault) -> Self {
        Self {
            strike: fault.transient_strike(),
            events: AtomicU64::new(0),
            fault,
        }
    }

    /// Applies the fault to one event's value. Stuck-ats corrupt every
    /// event; a transient corrupts only its struck event.
    fn tap(&self, raw: i64, bits: u32) -> i64 {
        match self.fault.kind {
            FaultKind::StuckAt0 | FaultKind::StuckAt1 => self.fault.corrupt_word(raw, bits),
            FaultKind::Transient => {
                let event = self.events.fetch_add(1, Ordering::Relaxed);
                if event == self.strike {
                    self.fault.corrupt_word(raw, bits)
                } else {
                    raw
                }
            }
        }
    }
}

impl Clone for Injector {
    fn clone(&self) -> Self {
        // A clone is a fresh physical unit carrying the same fault: its
        // event history restarts.
        Self::new(self.fault)
    }
}

/// The set of faults armed on one unit.
///
/// Cloning a plan clones the *faults*, not the event history — a cloned
/// plan behaves like a second physical unit suffering the same defects.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    injectors: Vec<Injector>,
}

impl PartialEq for FaultPlan {
    /// Plans compare by their armed faults; the event history (how many
    /// taps each injector has seen on *this* unit) is runtime state, not
    /// part of the plan's identity.
    fn eq(&self, other: &Self) -> bool {
        self.faults() == other.faults()
    }
}

impl Eq for FaultPlan {}

impl FaultPlan {
    /// An empty plan (a healthy unit).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A plan carrying exactly one fault.
    #[must_use]
    pub fn single(fault: Fault) -> Self {
        Self::new().with(fault)
    }

    /// Arms an additional fault.
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.push(fault);
        self
    }

    /// Arms an additional fault in place.
    pub fn push(&mut self, fault: Fault) {
        self.injectors.push(Injector::new(fault));
    }

    /// True when no fault is armed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.injectors.is_empty()
    }

    /// The armed faults.
    #[must_use]
    pub fn faults(&self) -> Vec<Fault> {
        self.injectors.iter().map(|i| i.fault).collect()
    }

    /// The permanent (stuck-at) LUT faults, for baking into stored ROM
    /// words at unit construction.
    pub(crate) fn permanent_lut_faults(&self) -> impl Iterator<Item = &Fault> {
        self.injectors
            .iter()
            .map(|i| &i.fault)
            .filter(|f| f.site.is_lut() && !matches!(f.kind, FaultKind::Transient))
    }

    /// Taps one event at a dynamic site (or a transient ROM read for LUT
    /// sites): every matching armed fault corrupts the value in turn.
    #[must_use]
    pub(crate) fn tap(
        &self,
        site: InjectionSite,
        entry: Option<usize>,
        raw: i64,
        bits: u32,
    ) -> i64 {
        let mut value = raw;
        for injector in &self.injectors {
            let f = &injector.fault;
            let matches_site = f.site == site
                && (!site.is_lut() || matches!(f.kind, FaultKind::Transient) && f.entry == entry);
            if matches_site {
                value = injector.tap(value, bits);
            }
        }
        value
    }

    /// Taps the widened accumulator (an `i128` net).
    #[must_use]
    pub(crate) fn tap_wide(&self, site: InjectionSite, raw: i128, bits: u32) -> i128 {
        let mut value = raw;
        for injector in &self.injectors {
            if injector.fault.site == site {
                value = tap_wide_one(injector, value, bits);
            }
        }
        value
    }
}

/// `Injector::tap` over an `i128` word (the accumulator is wider than 64
/// bits never in practice, but the pre-round sum is carried as `i128`).
fn tap_wide_one(injector: &Injector, raw: i128, bits: u32) -> i128 {
    let bits = bits.min(126);
    let bit = injector.fault.bit.min(bits.saturating_sub(1));
    let strike_now = match injector.fault.kind {
        FaultKind::StuckAt0 | FaultKind::StuckAt1 => true,
        FaultKind::Transient => injector.events.fetch_add(1, Ordering::Relaxed) == injector.strike,
    };
    if !strike_now {
        return raw;
    }
    let mask = (1_i128 << bits) - 1;
    let mut pattern = raw & mask;
    pattern = match injector.fault.kind {
        FaultKind::StuckAt0 => pattern & !(1_i128 << bit),
        FaultKind::StuckAt1 => pattern | (1_i128 << bit),
        FaultKind::Transient => pattern ^ (1_i128 << bit),
    };
    if pattern & (1_i128 << (bits - 1)) != 0 {
        pattern - (1_i128 << bits)
    } else {
        pattern
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_at_masks_are_idempotent() {
        for kind in [FaultKind::StuckAt0, FaultKind::StuckAt1] {
            for bit in 0..16 {
                for raw in [-32768_i64, -1, 0, 1, 12345, 32767] {
                    let once = apply_mask(raw, 16, bit, kind);
                    let twice = apply_mask(once, 16, bit, kind);
                    assert_eq!(once, twice, "{kind} bit {bit} raw {raw}");
                }
            }
        }
    }

    #[test]
    fn flip_is_an_involution_and_preserves_sign_extension() {
        for bit in 0..16 {
            for raw in [-32768_i64, -1, 0, 1, 12345, 32767] {
                let once = apply_mask(raw, 16, bit, FaultKind::Transient);
                assert_ne!(once, raw, "bit {bit} must change raw {raw}");
                assert_eq!(apply_mask(once, 16, bit, FaultKind::Transient), raw);
                assert!((-32768..=32767).contains(&once), "stays a 16-bit word");
            }
        }
    }

    #[test]
    fn sign_bit_fault_flips_the_sign() {
        assert_eq!(apply_mask(0, 16, 15, FaultKind::StuckAt1), -32768);
        assert_eq!(apply_mask(-1, 16, 15, FaultKind::StuckAt0), 32767);
    }

    #[test]
    fn transient_strike_is_deterministic_and_in_window() {
        let f = Fault::transient(InjectionSite::MacOperandA, 3, 42);
        let s = f.transient_strike();
        assert!(s < TRANSIENT_WINDOW);
        assert_eq!(s, f.transient_strike());
        // Different seed, (almost surely) different strike — at minimum,
        // the function must depend on the seed somewhere in a small set.
        let strikes: std::collections::HashSet<u64> = (0..32)
            .map(|seed| Fault::transient(InjectionSite::MacOperandA, 3, seed).transient_strike())
            .collect();
        assert!(strikes.len() > 8, "strikes barely vary with the seed");
    }

    #[test]
    fn transient_tap_strikes_exactly_once() {
        let fault = Fault::transient(InjectionSite::SigmaOut, 5, 7);
        let plan = FaultPlan::single(fault);
        let strike = fault.transient_strike();
        let mut corrupted = 0;
        for event in 0..TRANSIENT_WINDOW {
            let out = plan.tap(InjectionSite::SigmaOut, None, 100, 16);
            if out != 100 {
                corrupted += 1;
                assert_eq!(event, strike, "strike lands at the seeded event");
                assert_eq!(out, 100 ^ (1 << 5));
            }
        }
        assert_eq!(corrupted, 1);
    }

    #[test]
    fn cloned_plan_restarts_event_history() {
        let fault = Fault::transient(InjectionSite::MacOperandB, 2, 9);
        let plan = FaultPlan::single(fault);
        let strike = fault.transient_strike();
        for _ in 0..=strike {
            let _ = plan.tap(InjectionSite::MacOperandB, None, 0, 16);
        }
        // The original has already struck; a clone has not.
        let clone = plan.clone();
        let mut hit = false;
        for _ in 0..TRANSIENT_WINDOW {
            if clone.tap(InjectionSite::MacOperandB, None, 0, 16) != 0 {
                hit = true;
            }
        }
        assert!(hit, "the cloned unit suffers its own strike");
    }

    #[test]
    fn tap_ignores_other_sites_and_other_entries() {
        let plan = FaultPlan::single(Fault::stuck_lut(InjectionSite::LutSlope, 4, 0, true));
        // Permanent LUT faults are baked at construction, not tapped.
        assert_eq!(plan.tap(InjectionSite::LutSlope, Some(4), 0, 16), 0);
        assert_eq!(plan.tap(InjectionSite::MacOperandA, None, 0, 16), 0);
        let transient = FaultPlan::single(Fault {
            site: InjectionSite::LutBias,
            entry: Some(2),
            bit: 0,
            kind: FaultKind::Transient,
            seed: 0,
        });
        // A read of a different entry never strikes.
        for _ in 0..2 * TRANSIENT_WINDOW {
            assert_eq!(transient.tap(InjectionSite::LutBias, Some(3), 8, 16), 8);
        }
    }

    #[test]
    #[should_panic(expected = "LUT site")]
    fn stuck_lut_rejects_dynamic_sites() {
        let _ = Fault::stuck_lut(InjectionSite::MacOperandA, 0, 0, true);
    }
}
