//! Satellite acceptance property: **every** single-bit LUT corruption is
//! caught by the per-entry parity the moment the corrupted entry is read.
//!
//! The sampled property test draws arbitrary `(entry, bit, word, kind)`
//! corruptions; the exhaustive test sweeps the full cross product at the
//! paper width so the 100 % claim in EXPERIMENTS.md is checked, not
//! extrapolated.

use nacu::NacuConfig;
use nacu_faults::{CheckedNacu, Fault, FaultEvent, FaultPlan, InjectionSite};
use nacu_fixed::Fx;
use proptest::prelude::*;

/// Drives the unit so that `entry` is the coefficient entry actually
/// read: picks the smallest input magnitude that decodes to it.
fn address_of_entry(unit: &CheckedNacu, entry: usize) -> Fx {
    let fmt = unit.config().format;
    // `bounds[e]..bounds[e+1]` is segment e, so `bounds[e]` decodes to it.
    let mag = unit.golden().segment_bounds()[entry];
    Fx::from_raw(mag.min(fmt.max_raw()), fmt).expect("in range")
}

fn corrupted(entry: usize, bit: u32, slope_word: bool, stuck_to_one: bool) -> CheckedNacu {
    let site = if slope_word {
        InjectionSite::LutSlope
    } else {
        InjectionSite::LutBias
    };
    // A stuck-at whose forced value differs from the stored bit, so the
    // corruption is guaranteed to change the word: read the stored bit
    // first and force its complement when `stuck_to_one` would be latent.
    let clean = CheckedNacu::new(NacuConfig::paper_16bit()).expect("paper config");
    let (s, q) = clean.golden().coefficients()[entry];
    let stored = ((if slope_word { s } else { q } >> bit) & 1) == 1;
    let force = if stored == stuck_to_one {
        !stuck_to_one
    } else {
        stuck_to_one
    };
    clean.with_plan(FaultPlan::single(Fault::stuck_lut(site, entry, bit, force)))
}

proptest! {
    #[test]
    fn any_single_bit_lut_corruption_is_caught_at_lookup(
        entry in 0_usize..53,
        bit in 0_u32..16,
        slope_word in proptest::num::u64::ANY,
        polarity in proptest::num::u64::ANY,
    ) {
        let unit = corrupted(entry, bit, slope_word.is_multiple_of(2), polarity.is_multiple_of(2));
        let x = address_of_entry(&unit, entry);
        prop_assert_eq!(
            unit.sigmoid(x).expect_err("single-bit corruption must not pass parity"),
            FaultEvent::LutParity { entry }
        );
    }
}

#[test]
fn exhaustive_single_bit_lut_coverage_is_total() {
    let clean = CheckedNacu::new(NacuConfig::paper_16bit()).expect("paper config");
    let entries = clean.golden().coefficients().len();
    let bits = clean.config().format.total_bits();
    let mut checked = 0_u64;
    for entry in 0..entries {
        for bit in 0..bits {
            for slope_word in [true, false] {
                let unit = corrupted(entry, bit, slope_word, true);
                let x = address_of_entry(&unit, entry);
                assert_eq!(
                    unit.sigmoid(x).expect_err("corruption escaped parity"),
                    FaultEvent::LutParity { entry },
                    "entry {entry} bit {bit} slope={slope_word}"
                );
                checked += 1;
            }
        }
    }
    // 53 entries × 16 bits × 2 words at the paper width.
    assert_eq!(checked, (entries as u64) * u64::from(bits) * 2);
}
