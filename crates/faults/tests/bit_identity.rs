//! The checked datapath with an empty fault plan is bit-identical to the
//! unchecked [`Nacu`] — the property that keeps the fault subsystem
//! honest: whatever it reports about faults is measured against the exact
//! arithmetic the paper's unit performs, not an approximation of it.

use nacu::{Function, Nacu, NacuConfig};
use nacu_faults::CheckedNacu;
use nacu_fixed::{Fx, Rounding};
use proptest::prelude::*;

fn pair(width: u32) -> (CheckedNacu, Nacu) {
    let cfg = NacuConfig::for_width(width).expect("valid width");
    (
        CheckedNacu::new(cfg).expect("checked"),
        Nacu::new(cfg).expect("golden"),
    )
}

proptest! {
    #[test]
    fn sigmoid_matches_golden_bit_for_bit(raw in -32768_i64..=32767) {
        let (c, g) = pair(16);
        let x = Fx::from_raw(raw, g.config().format).expect("in range");
        prop_assert_eq!(c.sigmoid(x).expect("clean plan"), g.sigmoid(x));
    }

    #[test]
    fn tanh_matches_golden_bit_for_bit(raw in -32768_i64..=32767) {
        let (c, g) = pair(16);
        let x = Fx::from_raw(raw, g.config().format).expect("in range");
        prop_assert_eq!(c.tanh(x).expect("clean plan"), g.tanh(x));
    }

    #[test]
    fn exp_matches_golden_bit_for_bit(raw in -32768_i64..=0) {
        let (c, g) = pair(16);
        let x = Fx::from_raw(raw, g.config().format).expect("in range");
        prop_assert_eq!(c.exp(x).expect("clean plan"), g.exp(x));
    }

    #[test]
    fn softmax_matches_golden_bit_for_bit(
        vals in proptest::collection::vec(-8.0_f64..8.0, 1..10),
    ) {
        let (c, g) = pair(16);
        let fmt = g.config().format;
        let xs: Vec<Fx> = vals.iter().map(|&v| Fx::from_f64(v, fmt, Rounding::Nearest)).collect();
        prop_assert_eq!(
            c.softmax(&xs).expect("clean plan"),
            g.softmax(&xs).expect("valid vector")
        );
    }

    #[test]
    fn compute_dispatch_matches_across_widths(
        width in 10_u32..=21,
        frac in 0.0_f64..1.0,
    ) {
        let (c, g) = pair(width);
        let fmt = g.config().format;
        let span = (fmt.max_raw() - fmt.min_raw()) as f64;
        let raw = fmt.min_raw() + (frac * span) as i64;
        let x = Fx::from_raw(raw.clamp(fmt.min_raw(), fmt.max_raw()), fmt).expect("in range");
        for f in [Function::Sigmoid, Function::Tanh] {
            prop_assert_eq!(c.compute(f, x).expect("clean plan"), g.compute(f, x));
        }
        if x.raw() <= 0 {
            prop_assert_eq!(c.exp(x).expect("clean plan"), g.exp(x));
        }
    }
}

/// Exhaustive (not sampled) identity sweep at the paper width — cheap
/// enough to run on every test invocation, and the strongest form of the
/// acceptance criterion.
#[test]
fn exhaustive_16bit_sigmoid_tanh_identity() {
    let (c, g) = pair(16);
    let fmt = g.config().format;
    for raw in fmt.min_raw()..=fmt.max_raw() {
        let x = Fx::from_raw(raw, fmt).expect("in range");
        assert_eq!(
            c.sigmoid(x).expect("clean plan"),
            g.sigmoid(x),
            "σ at {raw}"
        );
        assert_eq!(c.tanh(x).expect("clean plan"), g.tanh(x), "tanh at {raw}");
    }
}
