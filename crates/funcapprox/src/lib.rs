//! Function-approximation substrate for the NACU reproduction.
//!
//! Section VI of the paper surveys four architectural families for
//! computing bounded non-linear functions in hardware:
//!
//! * [`UniformLut`] — uniform segments, one constant per segment (*LUT*),
//! * [`RangeLut`] — non-uniform segments, one constant per segment
//!   (*RALUT*, range-addressable LUT),
//! * [`UniformPwl`] — uniform segments, first-order polynomial per segment
//!   (*PWL*, the family NACU itself belongs to),
//! * [`NonUniformPwl`] — non-uniform segments, first-order polynomial
//!   (*NUPWL*).
//!
//! Each family is built against an f64 [`reference`] function over a domain
//! and evaluated **bit-accurately**: inputs, table contents and outputs are
//! quantised [`nacu_fixed::Fx`] values, so measured errors include both the
//! approximation error and the fixed-point quantisation error — exactly the
//! quantity Fig. 4 of the paper plots.
//!
//! The [`metrics`] module provides the exhaustive-sweep error measures the
//! paper reports (max error, average error, RMSE, correlation), and
//! [`search`] implements the "explore all interval counts, keep the best"
//! procedure behind Fig. 4a/4b.
//!
//! # Example
//!
//! ```
//! use nacu_fixed::QFormat;
//! use nacu_funcapprox::{reference::RefFunc, UniformPwl, FixedApprox, metrics};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fmt = QFormat::new(4, 11)?;
//! // 53-entry PWL over the positive sigmoid range, as in the paper.
//! let pwl = UniformPwl::fit(RefFunc::Sigmoid, 53, fmt, fmt)?;
//! let report = metrics::sweep(&pwl, RefFunc::Sigmoid);
//! assert!(report.max_error < 1e-3);
//! # Ok(())
//! # }
//! ```

mod approx;
pub mod metrics;
pub mod reference;
pub mod search;
pub mod segment;

pub use approx::lut::UniformLut;
pub use approx::nupwl::NonUniformPwl;
pub use approx::poly2::SecondOrderTable;
pub use approx::pwl::UniformPwl;
pub use approx::ralut::RangeLut;
pub use approx::{ApproxError, FixedApprox};
