//! Golden f64 reference functions.
//!
//! These play the role of the paper's Matlab reference model: every error
//! metric in the workspace is measured against the values returned here.
//! The domain conventions follow the paper: σ and tanh are approximated on
//! their **positive** input range (negative inputs come from centrosymmetry,
//! Eqs. 4–5), while the exponential is approximated on the **non-positive**
//! range produced by softmax max-normalisation (Eq. 13).

use std::fmt;

/// The non-linear functions NACU computes, as exact f64 references.
///
/// # Example
///
/// ```
/// use nacu_funcapprox::reference::RefFunc;
///
/// assert!((RefFunc::Sigmoid.eval(0.0) - 0.5).abs() < 1e-15);
/// assert!((RefFunc::Tanh.eval(0.0)).abs() < 1e-15);
/// assert!((RefFunc::ExpNeg.eval(0.0) - 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RefFunc {
    /// Logistic sigmoid `σ(x) = 1 / (1 + e^{-x})` (Eq. 1), approximated on
    /// `x ≥ 0` where `σ ∈ [0.5, 1)`.
    Sigmoid,
    /// Hyperbolic tangent (Eq. 2), approximated on `x ≥ 0` where
    /// `tanh ∈ [0, 1)`.
    Tanh,
    /// Exponential of a non-positive argument, `e^{x}` for `x ≤ 0`, the
    /// max-normalised softmax operand of Eq. 13 with range `(0, 1]`.
    ExpNeg,
}

impl RefFunc {
    /// Evaluates the reference function.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        match self {
            RefFunc::Sigmoid => sigmoid(x),
            RefFunc::Tanh => x.tanh(),
            RefFunc::ExpNeg => x.exp(),
        }
    }

    /// First derivative, used by segmentation heuristics (RALUT sizing is
    /// driven by the local gradient — §VI).
    #[must_use]
    pub fn derivative(&self, x: f64) -> f64 {
        match self {
            RefFunc::Sigmoid => {
                let s = sigmoid(x);
                s * (1.0 - s)
            }
            RefFunc::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            RefFunc::ExpNeg => x.exp(),
        }
    }

    /// Second derivative, used by PWL segmentation (linear-interpolation
    /// error scales with `|f''| · w²`).
    #[must_use]
    pub fn second_derivative(&self, x: f64) -> f64 {
        match self {
            RefFunc::Sigmoid => {
                let s = sigmoid(x);
                s * (1.0 - s) * (1.0 - 2.0 * s)
            }
            RefFunc::Tanh => {
                let t = x.tanh();
                -2.0 * t * (1.0 - t * t)
            }
            RefFunc::ExpNeg => x.exp(),
        }
    }

    /// Canonical approximation domain `[lo, hi]` for a given input `In_max`
    /// (the largest representable input, Eq. 6).
    ///
    /// σ and tanh use `[0, In_max]`. The normalised exponential's input is
    /// `x − x_max ∈ [−2^{i_b}, 0]` (§IV.B); since `In_max = 2^{i_b} −
    /// 2^{−f_b}`, the lower edge is `−In_max` rounded up to the enclosing
    /// power of two, i.e. the format's most negative code.
    #[must_use]
    pub fn domain(&self, in_max: f64) -> (f64, f64) {
        match self {
            RefFunc::Sigmoid | RefFunc::Tanh => (0.0, in_max),
            RefFunc::ExpNeg => (-in_max.ceil(), 0.0),
        }
    }

    /// The mathematical output range of the function over [`RefFunc::domain`].
    #[must_use]
    pub fn output_range(&self) -> (f64, f64) {
        match self {
            RefFunc::Sigmoid => (0.5, 1.0),
            RefFunc::Tanh => (0.0, 1.0),
            RefFunc::ExpNeg => (0.0, 1.0),
        }
    }

    /// All variants, for sweeps.
    #[must_use]
    pub fn all() -> [RefFunc; 3] {
        [RefFunc::Sigmoid, RefFunc::Tanh, RefFunc::ExpNeg]
    }
}

impl fmt::Display for RefFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RefFunc::Sigmoid => "sigmoid",
            RefFunc::Tanh => "tanh",
            RefFunc::ExpNeg => "exp",
        };
        f.write_str(name)
    }
}

/// Numerically stable logistic sigmoid (Eq. 1).
///
/// # Example
///
/// ```
/// assert!((nacu_funcapprox::reference::sigmoid(0.0) - 0.5).abs() < 1e-15);
/// ```
#[must_use]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Full-range sigmoid via the positive-range value and centrosymmetry
/// (Eq. 4): `σ(-x) = 1 - σ(x)`.
#[must_use]
pub fn sigmoid_from_positive(positive_value: f64, x_was_negative: bool) -> f64 {
    if x_was_negative {
        1.0 - positive_value
    } else {
        positive_value
    }
}

/// `tanh` from σ via Eq. 3: `tanh(x) = 2σ(2x) − 1`.
///
/// # Example
///
/// ```
/// let x = 0.7;
/// assert!((nacu_funcapprox::reference::tanh_from_sigmoid(x) - x.tanh()).abs() < 1e-12);
/// ```
#[must_use]
pub fn tanh_from_sigmoid(x: f64) -> f64 {
    2.0 * sigmoid(2.0 * x) - 1.0
}

/// `e^x` from σ via Eq. 14: `e^x = 1/σ(−x) − 1`.
///
/// # Example
///
/// ```
/// let x = -1.3;
/// assert!((nacu_funcapprox::reference::exp_from_sigmoid(x) - x.exp()).abs() < 1e-12);
/// ```
#[must_use]
pub fn exp_from_sigmoid(x: f64) -> f64 {
    sigmoid(-x).recip() - 1.0
}

/// Max-normalised softmax (Eq. 13), the numerically stable form NACU
/// implements.
///
/// # Panics
///
/// Panics if `inputs` is empty.
#[must_use]
pub fn softmax(inputs: &[f64]) -> Vec<f64> {
    assert!(!inputs.is_empty(), "softmax of an empty vector");
    let max = inputs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = inputs.iter().map(|x| (x - max).exp()).collect();
    let denom: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / denom).collect()
}

/// Naive softmax (Eq. 12), kept for the numerical-stability ablation: it
/// overflows/saturates for large inputs, which is exactly the failure mode
/// §IV.B describes.
#[must_use]
pub fn softmax_naive(inputs: &[f64]) -> Vec<f64> {
    let exps: Vec<f64> = inputs.iter().map(|x| x.exp()).collect();
    let denom: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / denom).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_matches_definition() {
        for x in [-20.0, -3.0, -0.5, 0.0, 0.5, 3.0, 20.0] {
            let direct = 1.0 / (1.0 + f64::exp(-x));
            assert!((sigmoid(x) - direct).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn sigmoid_is_stable_for_large_negative() {
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(-800.0) < 1e-300);
        assert_eq!(sigmoid(800.0), 1.0);
    }

    #[test]
    fn eq3_tanh_identity_holds() {
        for x in [-5.0, -1.2, 0.0, 0.3, 2.0, 7.9] {
            assert!((tanh_from_sigmoid(x) - f64::tanh(x)).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn eq4_eq5_centrosymmetry() {
        for x in [0.1, 0.9, 2.5, 7.0] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-12);
            assert!((f64::tanh(-x) + f64::tanh(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn eq14_exp_identity_holds() {
        for x in [-8.0, -2.0, -0.1, 0.0] {
            assert!((exp_from_sigmoid(x) - f64::exp(x)).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for f in RefFunc::all() {
            for x in [-3.0, -0.7, 0.0, 0.4, 2.0] {
                let fd = (f.eval(x + h) - f.eval(x - h)) / (2.0 * h);
                assert!(
                    (f.derivative(x) - fd).abs() < 1e-6,
                    "{f} first derivative at {x}"
                );
                let fd2 = (f.derivative(x + h) - f.derivative(x - h)) / (2.0 * h);
                assert!(
                    (f.second_derivative(x) - fd2).abs() < 1e-5,
                    "{f} second derivative at {x}"
                );
            }
        }
    }

    #[test]
    fn softmax_sums_to_one_and_orders_inputs() {
        let s = softmax(&[1.0, 3.0, 2.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[1] > s[2] && s[2] > s[0]);
    }

    #[test]
    fn naive_softmax_fails_where_normalised_succeeds() {
        // Eq. 12 saturates: e^1000 overflows to inf, giving NaN.
        let naive = softmax_naive(&[1000.0, 999.0]);
        assert!(naive.iter().any(|v| v.is_nan()));
        let stable = softmax(&[1000.0, 999.0]);
        assert!(stable.iter().all(|v| v.is_finite()));
        assert!((stable.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn domains_follow_paper_conventions() {
        let in_max = 16.0 - 2.0_f64.powi(-11); // Q4.11 In_max
        assert_eq!(RefFunc::Sigmoid.domain(in_max), (0.0, in_max));
        // Exp covers the full normalised range [-2^ib, 0].
        assert_eq!(RefFunc::ExpNeg.domain(in_max), (-16.0, 0.0));
    }

    #[test]
    fn display_names() {
        assert_eq!(RefFunc::Sigmoid.to_string(), "sigmoid");
        assert_eq!(RefFunc::Tanh.to_string(), "tanh");
        assert_eq!(RefFunc::ExpNeg.to_string(), "exp");
    }
}
