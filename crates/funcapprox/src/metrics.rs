//! Exhaustive-sweep error metrics.
//!
//! The paper reports **max error**, **average error**, **RMSE** and
//! **correlation** against the floating-point reference, measured over the
//! full fixed-point input range (§VII). For ≤ 21-bit formats the sweep over
//! every representable code is exact and cheap, so no sampling is involved.

use nacu_fixed::{Fx, QFormat, Rounding};

use crate::approx::FixedApprox;
use crate::reference::RefFunc;

/// The error statistics the paper reports for one implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorReport {
    /// Largest absolute error over the sweep.
    pub max_error: f64,
    /// Mean absolute error.
    pub avg_error: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Pearson correlation between approximation and reference outputs.
    pub correlation: f64,
    /// Input (real value) at which the max error occurred.
    pub worst_input: f64,
    /// Number of swept input codes.
    pub samples: usize,
}

impl ErrorReport {
    /// Ratio of this report's max error to `baseline`'s — the normalised
    /// quantity plotted in Fig. 6 (values > 1 mean worse than baseline).
    #[must_use]
    pub fn max_error_vs(&self, baseline: &ErrorReport) -> f64 {
        self.max_error / baseline.max_error
    }
}

impl std::fmt::Display for ErrorReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "max {:.3e}  avg {:.3e}  rmse {:.3e}  corr {:.6}",
            self.max_error, self.avg_error, self.rmse, self.correlation
        )
    }
}

/// Sweeps a [`FixedApprox`] over every input code in its function's domain
/// and compares against the f64 reference.
#[must_use]
pub fn sweep(approx: &dyn FixedApprox, func: RefFunc) -> ErrorReport {
    let in_fmt = approx.input_format();
    sweep_fn(in_fmt, func, |x| approx.eval(x).to_f64())
}

/// Sweeps an arbitrary fixed-point evaluator against a reference function
/// over the function's canonical domain in `in_fmt`.
///
/// This is the shared measurement kernel: the `nacu` datapath and every
/// `nacu-baselines` comparator funnel through here so all Fig. 6 numbers
/// are measured identically.
#[must_use]
pub fn sweep_fn(in_fmt: QFormat, func: RefFunc, mut eval: impl FnMut(Fx) -> f64) -> ErrorReport {
    let (lo, hi) = func.domain(in_fmt.max_value());
    let lo_raw = Rounding::Ceil.quantize(lo.max(in_fmt.min_value()), in_fmt.frac_bits()) as i64;
    let hi_raw = Rounding::Floor.quantize(hi.min(in_fmt.max_value()), in_fmt.frac_bits()) as i64;
    sweep_raw_range(in_fmt, lo_raw, hi_raw, |x| func.eval(x), &mut eval)
}

/// Sweeps an explicit raw-code range; the most general measurement entry
/// point (used e.g. for full-range σ including the negative half).
///
/// # Panics
///
/// Panics if the range is empty or not contained in `in_fmt`.
#[must_use]
pub fn sweep_raw_range(
    in_fmt: QFormat,
    lo_raw: i64,
    hi_raw: i64,
    reference: impl Fn(f64) -> f64,
    mut eval: impl FnMut(Fx) -> f64,
) -> ErrorReport {
    assert!(lo_raw <= hi_raw, "empty sweep range");
    let mut max_error = 0.0_f64;
    let mut worst_input = lo_raw as f64 * in_fmt.resolution();
    let mut sum_abs = 0.0_f64;
    let mut sum_sq = 0.0_f64;
    // Correlation accumulators.
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    let mut n = 0usize;
    for raw in lo_raw..=hi_raw {
        let x = Fx::from_raw(raw, in_fmt).expect("raw in range");
        let approx_y = eval(x);
        let ref_y = reference(x.to_f64());
        let err = (approx_y - ref_y).abs();
        if err > max_error {
            max_error = err;
            worst_input = x.to_f64();
        }
        sum_abs += err;
        sum_sq += err * err;
        sx += approx_y;
        sy += ref_y;
        sxx += approx_y * approx_y;
        syy += ref_y * ref_y;
        sxy += approx_y * ref_y;
        n += 1;
    }
    let nf = n as f64;
    let cov = sxy - sx * sy / nf;
    let var_x = sxx - sx * sx / nf;
    let var_y = syy - sy * sy / nf;
    let correlation = if var_x <= 0.0 || var_y <= 0.0 {
        // A constant series is perfectly correlated with a constant
        // reference and uncorrelated otherwise.
        if var_x <= 0.0 && var_y <= 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        cov / (var_x.sqrt() * var_y.sqrt())
    };
    ErrorReport {
        max_error,
        avg_error: sum_abs / nf,
        rmse: (sum_sq / nf).sqrt(),
        correlation,
        worst_input,
        samples: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformPwl;

    fn q() -> QFormat {
        QFormat::new(4, 11).unwrap()
    }

    #[test]
    fn perfect_quantised_model_hits_quantisation_floor() {
        // Evaluating the reference itself, quantised to the output format,
        // must give exactly the quantisation error bound: half an LSB.
        let report = sweep_fn(q(), RefFunc::Sigmoid, |x| {
            Fx::from_f64(RefFunc::Sigmoid.eval(x.to_f64()), q(), Rounding::Nearest).to_f64()
        });
        assert!(report.max_error <= q().resolution() / 2.0 + 1e-12);
        assert!(report.correlation > 0.999_999);
    }

    #[test]
    fn broken_model_is_flagged_by_every_metric() {
        let report = sweep_fn(q(), RefFunc::Sigmoid, |_| 0.0);
        assert!(report.max_error > 0.9); // σ reaches ~1
        assert!(report.avg_error > 0.5);
        assert!(report.rmse > 0.5);
        assert!(report.correlation.abs() < 1e-6);
    }

    #[test]
    fn rmse_never_exceeds_max_and_avg_never_exceeds_rmse() {
        let pwl = UniformPwl::fit(RefFunc::Tanh, 20, q(), q()).unwrap();
        let r = sweep(&pwl, RefFunc::Tanh);
        assert!(r.avg_error <= r.rmse + 1e-15);
        assert!(r.rmse <= r.max_error + 1e-15);
        assert_eq!(r.samples, q().max_raw() as usize + 1);
    }

    #[test]
    fn worst_input_is_inside_domain() {
        let pwl = UniformPwl::fit(RefFunc::ExpNeg, 16, q(), q()).unwrap();
        let r = sweep(&pwl, RefFunc::ExpNeg);
        assert!(r.worst_input <= 0.0 && r.worst_input >= -16.0);
    }

    #[test]
    fn normalised_ratio_matches_division() {
        let a = sweep_fn(q(), RefFunc::Sigmoid, |_| 0.0);
        let b = sweep_fn(q(), RefFunc::Sigmoid, |x| {
            RefFunc::Sigmoid.eval(x.to_f64()) + 0.001
        });
        let ratio = b.max_error_vs(&a);
        assert!((ratio - b.max_error / a.max_error).abs() < 1e-15);
        assert!(ratio < 1.0);
    }

    #[test]
    #[should_panic(expected = "empty sweep range")]
    fn empty_range_panics() {
        let _ = sweep_raw_range(q(), 5, 4, |x| x, |x| x.to_f64());
    }
}
