//! The Fig. 4 design-space search.
//!
//! "For the implementations presented in Fig. 4, all possible interval
//! sizes, ranges and fixed-point formats were explored, and the one with
//! the best accuracy was selected." This module reproduces that procedure:
//! for each family it finds (a) the minimum entry count achieving a target
//! accuracy (Fig. 4a) and (b) the best accuracy achievable at a given entry
//! count (Fig. 4b).

use std::fmt;

use nacu_fixed::QFormat;

use crate::approx::{ApproxError, FixedApprox};
use crate::metrics;
use crate::reference::RefFunc;
use crate::{NonUniformPwl, RangeLut, UniformLut, UniformPwl};

/// Upper bound on table sizes the search will consider; matches the largest
/// LUT Fig. 4a reports (~1026 entries at 10 fractional bits) with headroom.
const SEARCH_CEILING: usize = 1 << 13;

/// The four §VI approximation families, as search handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Family {
    /// Uniform constant LUT.
    Lut,
    /// Range-addressable (non-uniform) constant LUT.
    Ralut,
    /// Uniform piecewise-linear table.
    Pwl,
    /// Non-uniform piecewise-linear table.
    Nupwl,
}

impl Family {
    /// All families, in the order Fig. 4 plots them.
    #[must_use]
    pub fn all() -> [Family; 4] {
        [Family::Lut, Family::Ralut, Family::Pwl, Family::Nupwl]
    }

    /// Builds a table of this family with (at most) `entries` entries.
    ///
    /// # Errors
    ///
    /// Propagates the family constructor's [`ApproxError`].
    pub fn build(
        &self,
        func: RefFunc,
        entries: usize,
        in_fmt: QFormat,
        out_fmt: QFormat,
    ) -> Result<Box<dyn FixedApprox>, ApproxError> {
        Ok(match self {
            Family::Lut => Box::new(UniformLut::fit(func, entries, in_fmt, out_fmt)?),
            Family::Ralut => Box::new(RangeLut::fit_entries(func, entries, in_fmt, out_fmt)?),
            Family::Pwl => Box::new(UniformPwl::fit(func, entries, in_fmt, out_fmt)?),
            Family::Nupwl => Box::new(NonUniformPwl::fit_entries(func, entries, in_fmt, out_fmt)?),
        })
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Family::Lut => "LUT",
            Family::Ralut => "RALUT",
            Family::Pwl => "PWL",
            Family::Nupwl => "NUPWL",
        };
        f.write_str(name)
    }
}

/// Measured max error of the best table of `family` with exactly (uniform
/// families) or at most (non-uniform families) `entries` entries.
///
/// Returns `None` if the table cannot be built (e.g. more entries than
/// input codes).
#[must_use]
pub fn best_max_error(
    family: Family,
    func: RefFunc,
    entries: usize,
    in_fmt: QFormat,
    out_fmt: QFormat,
) -> Option<f64> {
    let table = family.build(func, entries, in_fmt, out_fmt).ok()?;
    Some(metrics::sweep(table.as_ref(), func).max_error)
}

/// Minimum entry count for which `family` achieves a swept max error of at
/// most `tolerance` — one point of Fig. 4a.
///
/// Returns `None` if even [`SEARCH_CEILING`] entries cannot reach the
/// tolerance (it is below the quantisation floor of `out_fmt`).
#[must_use]
pub fn min_entries(
    family: Family,
    func: RefFunc,
    tolerance: f64,
    in_fmt: QFormat,
    out_fmt: QFormat,
) -> Option<usize> {
    // Non-uniform families: the greedy construction is *directly*
    // tolerance-driven, so instead of a nested entries-bisection (which
    // squares the search cost) build at a few fractions of the target —
    // the measured error exceeds the fit tolerance only by quantisation,
    // so a small back-off always lands.
    match family {
        Family::Ralut | Family::Nupwl => {
            return min_entries_tolerance_driven(family, func, tolerance, in_fmt, out_fmt);
        }
        Family::Lut | Family::Pwl => {}
    }
    let reaches = |entries: usize| -> bool {
        best_max_error(family, func, entries, in_fmt, out_fmt).is_some_and(|err| err <= tolerance)
    };
    // A table can have at most one entry per representable input code.
    let ceiling = SEARCH_CEILING.min(usize::try_from(in_fmt.max_raw()).unwrap_or(usize::MAX));
    if !reaches(ceiling) {
        return None;
    }
    // Exponential probe then binary search: error is monotone (within
    // quantisation noise) in the entry count.
    let mut hi = 1usize;
    while hi < ceiling && !reaches(hi.min(ceiling)) {
        hi *= 2;
    }
    let mut hi = hi.min(ceiling);
    let mut lo = hi / 2;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if reaches(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// Smallest integer-bit count satisfying the paper's Eq. 7 for a given
/// fractional-bit target:
/// `2^{i_b} · (1 − 2^{1−N}) > ln(2) · f_b` with `N = 1 + i_b + f_b`.
///
/// This is the "range" dimension of the Fig. 4 exploration — e.g. `f_b =
/// 10` needs only `i_b = 3` (domain `[0, 8)`), while `f_b = 11` needs
/// `i_b = 4`, which is how the paper's 16-bit format becomes `Q4.11`.
#[must_use]
pub fn eq7_min_int_bits(frac_bits: u32) -> u32 {
    let fb = f64::from(frac_bits);
    for ib in 0..32u32 {
        let n = 1 + ib + frac_bits;
        let lhs = 2.0_f64.powi(ib as i32) * (1.0 - 2.0_f64.powi(1 - n as i32));
        if lhs > std::f64::consts::LN_2 * fb {
            return ib;
        }
    }
    unreachable!("Eq. 7 is satisfiable for every frac_bits < 2^31 / ln 2")
}

/// Tolerance-driven entry minimisation for the greedy families.
fn min_entries_tolerance_driven(
    family: Family,
    func: RefFunc,
    tolerance: f64,
    in_fmt: QFormat,
    out_fmt: QFormat,
) -> Option<usize> {
    let build = |tol: f64| -> Option<Box<dyn FixedApprox>> {
        match family {
            Family::Ralut => RangeLut::fit_tolerance(func, tol, in_fmt, out_fmt)
                .ok()
                .map(|t| Box::new(t) as Box<dyn FixedApprox>),
            Family::Nupwl => NonUniformPwl::fit_tolerance(func, tol, in_fmt, out_fmt)
                .ok()
                .map(|t| Box::new(t) as Box<dyn FixedApprox>),
            Family::Lut | Family::Pwl => unreachable!("uniform families use bisection"),
        }
    };
    // Leave progressively more of the budget to quantisation.
    for backoff in [0.9, 0.75, 0.5, 0.25, 0.1] {
        if let Some(table) = build(tolerance * backoff) {
            if table.entries() <= SEARCH_CEILING
                && metrics::sweep(table.as_ref(), func).max_error <= tolerance
            {
                return Some(table.entries());
            }
        }
    }
    None
}

/// One row of the Fig. 4a series: entries needed per family at a given
/// output precision (tolerance `2^{-frac_bits}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntriesRow {
    /// Fractional bits defining the accuracy target.
    pub frac_bits: u32,
    /// Entries needed per family (ordered as [`Family::all`]); `None` where
    /// unreachable.
    pub entries: [Option<usize>; 4],
}

/// Computes the Fig. 4a series: for each fractional-bit count, the minimum
/// entries per family to push the max error below one output LSB
/// (`2^{-f_b}`).
///
/// The input format follows the paper's Eq. 7 dimensioning
/// ([`eq7_min_int_bits`]): the smallest range in which the function
/// saturates within one output LSB — the "ranges" axis of the paper's
/// exploration.
#[must_use]
pub fn fig4a_series(
    func: RefFunc,
    frac_bits_range: std::ops::RangeInclusive<u32>,
) -> Vec<EntriesRow> {
    frac_bits_range
        .map(|fb| {
            let fmt = QFormat::new(eq7_min_int_bits(fb), fb).expect("valid sweep format");
            let tol = 2.0_f64.powi(-(fb as i32));
            let mut entries = [None; 4];
            for (i, family) in Family::all().into_iter().enumerate() {
                entries[i] = min_entries(family, func, tol, fmt, fmt);
            }
            EntriesRow {
                frac_bits: fb,
                entries,
            }
        })
        .collect()
}

/// One row of the Fig. 4b series: max error per family at a given entry
/// count, with 11 fractional bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorRow {
    /// Table entry count.
    pub entries: usize,
    /// Max error per family (ordered as [`Family::all`]); `None` where the
    /// table cannot be built.
    pub max_error: [Option<f64>; 4],
}

/// Computes the Fig. 4b series: max error vs entry count at a fixed format.
#[must_use]
pub fn fig4b_series(func: RefFunc, entry_counts: &[usize], fmt: QFormat) -> Vec<ErrorRow> {
    entry_counts
        .iter()
        .map(|&entries| {
            let mut max_error = [None; 4];
            for (i, family) in Family::all().into_iter().enumerate() {
                max_error[i] = best_max_error(family, func, entries, fmt, fmt);
            }
            ErrorRow { entries, max_error }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt(fb: u32) -> QFormat {
        QFormat::new(eq7_min_int_bits(fb), fb).unwrap()
    }

    #[test]
    fn eq7_minimal_ranges() {
        // With f_b free-standing, Eq. 7 needs 2^ib ≳ ln2·f_b. (The §III
        // N=16 → Q4.11 result fixes N instead; that solver lives in the
        // `nacu` crate's format module.)
        assert_eq!(eq7_min_int_bits(10), 3); // 8 > 6.93
        assert_eq!(eq7_min_int_bits(11), 3); // 8 > 7.63
        assert_eq!(eq7_min_int_bits(12), 4); // 8 < 8.32, 16 > 8.32
        assert_eq!(eq7_min_int_bits(22), 4);
        assert_eq!(eq7_min_int_bits(24), 5);
    }

    #[test]
    fn pwl_needs_far_fewer_entries_than_lut() {
        // Fig. 4a headline: at 10 fractional bits, PWL ≈ 50 entries vs
        // LUT ≈ 1026 and RALUT ≈ 668 (we assert the orders of magnitude).
        let f = fmt(10);
        let tol = 2.0_f64.powi(-10);
        let pwl = min_entries(Family::Pwl, RefFunc::Sigmoid, tol, f, f).unwrap();
        let lut = min_entries(Family::Lut, RefFunc::Sigmoid, tol, f, f).unwrap();
        assert!(pwl < 100, "PWL needed {pwl}");
        assert!(lut > 400, "LUT needed {lut}");
        assert!(lut > 8 * pwl, "LUT {lut} vs PWL {pwl}");
    }

    #[test]
    fn ralut_sits_between_lut_and_pwl() {
        let f = fmt(8);
        let tol = 2.0_f64.powi(-8);
        let lut = min_entries(Family::Lut, RefFunc::Sigmoid, tol, f, f).unwrap();
        let ralut = min_entries(Family::Ralut, RefFunc::Sigmoid, tol, f, f).unwrap();
        let pwl = min_entries(Family::Pwl, RefFunc::Sigmoid, tol, f, f).unwrap();
        assert!(ralut < lut, "RALUT {ralut} should beat LUT {lut}");
        assert!(pwl < ralut, "PWL {pwl} should beat RALUT {ralut}");
    }

    #[test]
    fn unreachable_tolerance_returns_none() {
        let f = fmt(6);
        // 2^-20 is far below the 6-fractional-bit quantisation floor.
        assert_eq!(
            min_entries(Family::Pwl, RefFunc::Sigmoid, 2.0_f64.powi(-20), f, f),
            None
        );
    }

    #[test]
    fn fig4b_errors_flatten_at_quantisation_floor() {
        let f = fmt(11);
        let rows = fig4b_series(RefFunc::Sigmoid, &[8, 64, 512], f);
        let pwl_idx = 2;
        let e8 = rows[0].max_error[pwl_idx].unwrap();
        let e64 = rows[1].max_error[pwl_idx].unwrap();
        let e512 = rows[2].max_error[pwl_idx].unwrap();
        assert!(e64 < e8);
        // Past the knee the improvement is marginal (quantisation floor).
        assert!(e512 > e64 / 20.0);
        assert!(e512 >= 2.0_f64.powi(-13), "cannot beat the output LSB");
    }

    #[test]
    fn orderings_hold_for_tanh_and_exp_too() {
        // Fig. 4 plots σ, but the search machinery is function-generic;
        // the family ordering must hold for the other two NACU functions.
        for func in [RefFunc::Tanh, RefFunc::ExpNeg] {
            let f = fmt(7);
            let tol = 2.0_f64.powi(-7);
            let pwl = min_entries(Family::Pwl, func, tol, f, f).unwrap();
            match min_entries(Family::Lut, func, tol, f, f) {
                // tanh: the LUT needs ~1000 entries where PWL needs ~30.
                Some(lut) => assert!(10 * pwl < lut, "{func:?}: PWL {pwl} vs LUT {lut}"),
                // exp at f_b = 7 has a unit gradient at 0: the LUT would
                // need one entry per input code — unreachable, while PWL
                // manages with a few dozen. The strongest ordering.
                None => assert!(pwl < 100, "{func:?}: PWL {pwl}"),
            }
        }
    }

    #[test]
    fn family_display_and_build() {
        let f = fmt(8);
        for family in Family::all() {
            let t = family.build(RefFunc::Tanh, 32, f, f).unwrap();
            assert_eq!(t.family(), family.to_string());
            assert!(t.entries() <= 32);
        }
    }
}
