//! Segmentation and per-segment fitting of non-linear functions.
//!
//! All four approximation families divide the input domain into segments
//! and approximate the function inside each segment by a constant or a
//! first-order polynomial (§VI). This module provides the real-valued
//! fitting machinery; the `approx` module quantises the results into
//! hardware table contents.

use crate::reference::RefFunc;

/// Number of sample points used when scanning a segment for its error
/// extremum. The functions involved are smooth and monotone-gradient, so a
/// modest dense scan is accurate to well below the quantisation floors
/// being measured.
const SCAN_POINTS: usize = 257;

/// A half-open input interval `[lo, hi)` of the approximation domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge.
    pub hi: f64,
}

impl Segment {
    /// Creates a segment.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad segment");
        Self { lo, hi }
    }

    /// Segment width.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Segment midpoint.
    #[must_use]
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// `true` if `x` lies inside `[lo, hi)`.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x < self.hi
    }
}

/// A first-order approximation `f(x) ≈ slope·x + bias` valid on one segment
/// (the `m₁`/`q` pair of the paper's Eq. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Slope `m₁`.
    pub slope: f64,
    /// Bias `q`.
    pub bias: f64,
}

impl LineFit {
    /// Evaluates the line.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.bias
    }
}

/// How per-segment coefficients are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum FitMethod {
    /// Chord through the segment endpoints, bias shifted to split the peak
    /// deviation — the minimax line for a segment on which the function is
    /// convex or concave (true for σ, tanh and e^x away from x = 0). This
    /// is the best-accuracy choice the paper's Fig. 4 search would select.
    #[default]
    Minimax,
    /// Chord through the segment endpoints (simple interpolation).
    Interpolate,
    /// Ordinary least squares over a dense sample of the segment.
    LeastSquares,
}

/// Fits a line to `func` on `seg` with the requested method.
#[must_use]
pub fn fit_line(func: RefFunc, seg: Segment, method: FitMethod) -> LineFit {
    let f_lo = func.eval(seg.lo);
    let f_hi = func.eval(seg.hi);
    let chord_slope = (f_hi - f_lo) / seg.width();
    match method {
        FitMethod::Interpolate => LineFit {
            slope: chord_slope,
            bias: f_lo - chord_slope * seg.lo,
        },
        FitMethod::Minimax => {
            let chord = LineFit {
                slope: chord_slope,
                bias: f_lo - chord_slope * seg.lo,
            };
            // The residual f - chord is zero at both endpoints; shift the
            // bias by half the peak residual so the error splits evenly.
            let (min_r, max_r) = residual_extrema(func, seg, chord);
            LineFit {
                slope: chord_slope,
                bias: chord.bias + 0.5 * (min_r + max_r),
            }
        }
        FitMethod::LeastSquares => {
            let n = SCAN_POINTS as f64;
            let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
            for i in 0..SCAN_POINTS {
                let x = seg.lo + seg.width() * i as f64 / (SCAN_POINTS - 1) as f64;
                let y = func.eval(x);
                sx += x;
                sy += y;
                sxx += x * x;
                sxy += x * y;
            }
            let denom = n * sxx - sx * sx;
            let slope = if denom.abs() < f64::EPSILON {
                0.0
            } else {
                (n * sxy - sx * sy) / denom
            };
            LineFit {
                slope,
                bias: (sy - slope * sx) / n,
            }
        }
    }
}

/// Best constant approximation of `func` on `seg` (the minimax constant:
/// halfway between the segment's min and max — the functions here are
/// monotone so those are the endpoint values).
#[must_use]
pub fn fit_constant(func: RefFunc, seg: Segment) -> f64 {
    let a = func.eval(seg.lo);
    let b = func.eval(seg.hi);
    0.5 * (a + b)
}

/// Given a fixed (e.g. already-quantised) slope, returns the bias that
/// minimises the maximum deviation on the segment.
#[must_use]
pub fn refit_bias(func: RefFunc, seg: Segment, slope: f64) -> f64 {
    let zero_bias = LineFit { slope, bias: 0.0 };
    let (min_r, max_r) = residual_extrema(func, seg, zero_bias);
    0.5 * (min_r + max_r)
}

/// Maximum absolute deviation `|f(x) − fit(x)|` over the segment.
#[must_use]
pub fn max_abs_error(func: RefFunc, seg: Segment, fit: LineFit) -> f64 {
    let (min_r, max_r) = residual_extrema(func, seg, fit);
    min_r.abs().max(max_r.abs())
}

/// (min, max) of the residual `f(x) − fit(x)` over a dense scan of the
/// segment.
fn residual_extrema(func: RefFunc, seg: Segment, fit: LineFit) -> (f64, f64) {
    let mut min_r = f64::INFINITY;
    let mut max_r = f64::NEG_INFINITY;
    for i in 0..SCAN_POINTS {
        let x = seg.lo + seg.width() * i as f64 / (SCAN_POINTS - 1) as f64;
        let r = func.eval(x) - fit.eval(x);
        min_r = min_r.min(r);
        max_r = max_r.max(r);
    }
    (min_r, max_r)
}

/// A second-order approximation `f(x) ≈ a·x² + b·x + c` on one segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadFit {
    /// Quadratic coefficient.
    pub a: f64,
    /// Linear coefficient.
    pub b: f64,
    /// Constant coefficient.
    pub c: f64,
}

impl QuadFit {
    /// Evaluates the parabola.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        (self.a * x + self.b) * x + self.c
    }
}

/// Fits a parabola to `func` on `seg`: least-squares over a dense sample,
/// then a minimax bias shift (near-optimal for the smooth, low-curvature
/// functions involved).
#[must_use]
#[allow(clippy::needless_range_loop)] // Gaussian elimination reads clearest indexed
pub fn fit_quadratic(func: RefFunc, seg: Segment) -> QuadFit {
    // Least-squares normal equations for [1, x, x²] on SCAN_POINTS samples.
    let mut s = [0.0_f64; 5]; // Σ x^k, k = 0..4
    let mut t = [0.0_f64; 3]; // Σ y·x^k, k = 0..2
    for i in 0..SCAN_POINTS {
        let x = seg.lo + seg.width() * i as f64 / (SCAN_POINTS - 1) as f64;
        let y = func.eval(x);
        let mut xk = 1.0;
        for k in 0..5 {
            s[k] += xk;
            if k < 3 {
                t[k] += y * xk;
            }
            xk *= x;
        }
    }
    let mut m = [
        [s[0], s[1], s[2], t[0]],
        [s[1], s[2], s[3], t[1]],
        [s[2], s[3], s[4], t[2]],
    ];
    for col in 0..3 {
        let pivot = (col..3)
            .max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))
            .expect("non-empty");
        m.swap(col, pivot);
        for row in 0..3 {
            if row != col && m[col][col].abs() > f64::EPSILON {
                let f = m[row][col] / m[col][col];
                for k in col..4 {
                    m[row][k] -= f * m[col][k];
                }
            }
        }
    }
    let c = m[0][3] / m[0][0];
    let b = m[1][3] / m[1][1];
    let a = m[2][3] / m[2][2];
    // Centre the residual (minimax shift of the constant term).
    let mut min_r = f64::INFINITY;
    let mut max_r = f64::NEG_INFINITY;
    let fit = QuadFit { a, b, c };
    for i in 0..SCAN_POINTS {
        let x = seg.lo + seg.width() * i as f64 / (SCAN_POINTS - 1) as f64;
        let r = func.eval(x) - fit.eval(x);
        min_r = min_r.min(r);
        max_r = max_r.max(r);
    }
    QuadFit {
        a,
        b,
        c: c + 0.5 * (min_r + max_r),
    }
}

/// Maximum absolute deviation of a quadratic fit over the segment.
#[must_use]
pub fn max_abs_error_quad(func: RefFunc, seg: Segment, fit: QuadFit) -> f64 {
    let mut worst = 0.0_f64;
    for i in 0..SCAN_POINTS {
        let x = seg.lo + seg.width() * i as f64 / (SCAN_POINTS - 1) as f64;
        worst = worst.max((func.eval(x) - fit.eval(x)).abs());
    }
    worst
}

/// Splits `[lo, hi]` into `count` equal-width segments.
///
/// # Panics
///
/// Panics if `count` is zero or the bounds are not an ascending finite pair.
#[must_use]
pub fn uniform_segments(lo: f64, hi: f64, count: usize) -> Vec<Segment> {
    assert!(count > 0, "segment count must be positive");
    let width = (hi - lo) / count as f64;
    (0..count)
        .map(|i| Segment::new(lo + width * i as f64, lo + width * (i + 1) as f64))
        .collect()
}

/// Approximation order used by the greedy non-uniform segmenter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// One constant per segment (RALUT).
    Constant,
    /// One line per segment (NUPWL).
    Linear,
}

/// Greedy non-uniform segmentation: starting at `lo`, each segment is grown
/// to the widest interval whose per-segment minimax error stays within
/// `tolerance`. This is the standard construction for RALUT/NUPWL tables
/// (smaller segments where the gradient — or curvature — is large, §VI).
///
/// Returns `None` if `tolerance` would need more than `max_segments`
/// segments.
#[must_use]
pub fn greedy_segments(
    func: RefFunc,
    lo: f64,
    hi: f64,
    tolerance: f64,
    kind: SegmentKind,
    max_segments: usize,
) -> Option<Vec<Segment>> {
    assert!(tolerance > 0.0, "tolerance must be positive");
    let mut segments = Vec::new();
    let mut cursor = lo;
    let min_width = (hi - lo) * 1e-9;
    while cursor < hi {
        if segments.len() >= max_segments {
            return None;
        }
        // Binary search on the segment width: error is monotone in width
        // for these smooth functions.
        let mut good = cursor + min_width;
        let mut bad = hi + min_width;
        if segment_error(func, cursor, hi.min(bad), kind) <= tolerance {
            segments.push(Segment::new(cursor, hi));
            break;
        }
        // 22 halvings of a ≤32-wide domain resolve the edge to ~1e-5,
        // far finer than any input grid swept in this workspace.
        for _ in 0..22 {
            let mid = 0.5 * (good + bad);
            if segment_error(func, cursor, mid, kind) <= tolerance {
                good = mid;
            } else {
                bad = mid;
            }
        }
        let end = good.min(hi);
        if end <= cursor + min_width / 2.0 {
            // Tolerance unreachable even with an infinitesimal segment
            // (it is below the function's own representable variation).
            return None;
        }
        segments.push(Segment::new(cursor, end));
        cursor = end;
    }
    Some(segments)
}

fn segment_error(func: RefFunc, lo: f64, hi: f64, kind: SegmentKind) -> f64 {
    if hi <= lo {
        return 0.0;
    }
    let seg = Segment::new(lo, hi);
    match kind {
        SegmentKind::Constant => {
            let c = fit_constant(func, seg);
            max_abs_error(
                func,
                seg,
                LineFit {
                    slope: 0.0,
                    bias: c,
                },
            )
        }
        SegmentKind::Linear => {
            let fit = fit_line(func, seg, FitMethod::Minimax);
            max_abs_error(func, seg, fit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimax_beats_interpolation() {
        let seg = Segment::new(0.0, 1.0);
        let interp = fit_line(RefFunc::Sigmoid, seg, FitMethod::Interpolate);
        let minimax = fit_line(RefFunc::Sigmoid, seg, FitMethod::Minimax);
        let e_interp = max_abs_error(RefFunc::Sigmoid, seg, interp);
        let e_minimax = max_abs_error(RefFunc::Sigmoid, seg, minimax);
        assert!(e_minimax < e_interp);
        // For a concave/convex function the minimax line halves the chord error.
        assert!(e_minimax < 0.51 * e_interp);
    }

    #[test]
    fn least_squares_is_between() {
        let seg = Segment::new(0.0, 2.0);
        let ls = fit_line(RefFunc::Tanh, seg, FitMethod::LeastSquares);
        let e_ls = max_abs_error(RefFunc::Tanh, seg, ls);
        let e_interp = max_abs_error(
            RefFunc::Tanh,
            seg,
            fit_line(RefFunc::Tanh, seg, FitMethod::Interpolate),
        );
        let e_minimax = max_abs_error(
            RefFunc::Tanh,
            seg,
            fit_line(RefFunc::Tanh, seg, FitMethod::Minimax),
        );
        assert!(e_ls <= e_interp + 1e-12);
        assert!(e_ls >= e_minimax - 1e-12);
    }

    #[test]
    fn fit_constant_is_minimax_for_monotone_functions() {
        let seg = Segment::new(0.5, 1.5);
        let c = fit_constant(RefFunc::Sigmoid, seg);
        let half_variation =
            0.5 * (RefFunc::Sigmoid.eval(seg.hi) - RefFunc::Sigmoid.eval(seg.lo)).abs();
        let err = max_abs_error(
            RefFunc::Sigmoid,
            seg,
            LineFit {
                slope: 0.0,
                bias: c,
            },
        );
        assert!((err - half_variation).abs() < 1e-9);
    }

    #[test]
    fn refit_bias_recovers_minimax_bias_for_exact_slope() {
        let seg = Segment::new(0.0, 1.0);
        let minimax = fit_line(RefFunc::Sigmoid, seg, FitMethod::Minimax);
        let bias = refit_bias(RefFunc::Sigmoid, seg, minimax.slope);
        assert!((bias - minimax.bias).abs() < 1e-9);
    }

    #[test]
    fn uniform_segments_tile_the_domain() {
        let segs = uniform_segments(0.0, 16.0, 53);
        assert_eq!(segs.len(), 53);
        assert_eq!(segs[0].lo, 0.0);
        assert!((segs.last().unwrap().hi - 16.0).abs() < 1e-12);
        for pair in segs.windows(2) {
            assert!((pair[0].hi - pair[1].lo).abs() < 1e-12);
        }
    }

    #[test]
    fn greedy_segments_respect_tolerance() {
        let tol = 1e-3;
        let segs =
            greedy_segments(RefFunc::Sigmoid, 0.0, 16.0, tol, SegmentKind::Linear, 4096).unwrap();
        for seg in &segs {
            let fit = fit_line(RefFunc::Sigmoid, *seg, FitMethod::Minimax);
            assert!(max_abs_error(RefFunc::Sigmoid, *seg, fit) <= tol * 1.0001);
        }
        assert!((segs.last().unwrap().hi - 16.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_constant_needs_more_segments_than_linear() {
        let tol = 1e-3;
        let constant = greedy_segments(
            RefFunc::Sigmoid,
            0.0,
            16.0,
            tol,
            SegmentKind::Constant,
            65536,
        )
        .unwrap();
        let linear =
            greedy_segments(RefFunc::Sigmoid, 0.0, 16.0, tol, SegmentKind::Linear, 65536).unwrap();
        assert!(
            constant.len() > 4 * linear.len(),
            "constant {} vs linear {}",
            constant.len(),
            linear.len()
        );
    }

    #[test]
    fn greedy_gives_up_when_budget_exceeded() {
        assert!(
            greedy_segments(RefFunc::Sigmoid, 0.0, 16.0, 1e-6, SegmentKind::Constant, 8).is_none()
        );
    }

    #[test]
    fn greedy_segments_are_smaller_near_steep_region() {
        let segs = greedy_segments(
            RefFunc::Sigmoid,
            0.0,
            16.0,
            1e-4,
            SegmentKind::Constant,
            65536,
        )
        .unwrap();
        // σ is steepest at 0, nearly flat at 16.
        assert!(segs.first().unwrap().width() < segs.last().unwrap().width());
    }

    #[test]
    #[should_panic(expected = "bad segment")]
    fn inverted_segment_panics() {
        let _ = Segment::new(2.0, 1.0);
    }

    #[test]
    fn quadratic_fit_beats_linear_on_wide_segments() {
        let seg = Segment::new(0.0, 4.0);
        let line = fit_line(RefFunc::Sigmoid, seg, FitMethod::Minimax);
        let quad = fit_quadratic(RefFunc::Sigmoid, seg);
        let e_line = max_abs_error(RefFunc::Sigmoid, seg, line);
        let e_quad = max_abs_error_quad(RefFunc::Sigmoid, seg, quad);
        assert!(
            e_quad < e_line / 2.0,
            "quad {e_quad} should clearly beat line {e_line}"
        );
    }

    #[test]
    fn quadratic_fit_is_near_exact_on_narrow_segments() {
        let seg = Segment::new(1.0, 1.2);
        let quad = fit_quadratic(RefFunc::Tanh, seg);
        // Cubic-term residual: |f'''|·(w/2)³/24 ≈ 8e-5 for tanh at w = 0.2.
        assert!(max_abs_error_quad(RefFunc::Tanh, seg, quad) < 1e-4);
    }

    #[test]
    fn quad_eval_is_horner_consistent() {
        let q = QuadFit {
            a: 2.0,
            b: -1.0,
            c: 0.5,
        };
        assert!((q.eval(3.0) - (18.0 - 3.0 + 0.5)).abs() < 1e-12);
    }
}
