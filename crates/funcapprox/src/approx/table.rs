//! Shared segment-table machinery for the four approximation families.
//!
//! Every family stores (a) a sorted list of segment boundaries in **raw
//! input codes** and (b) one payload per segment — a constant output code or
//! a quantised `(m₁, q)` line. Evaluation is: clamp the input code into the
//! table's range, locate its segment, apply the payload. All arithmetic is
//! integer arithmetic on raw codes, matching what the RTL would compute.

use nacu_fixed::{Fx, QFormat, Rounding};

use crate::reference::RefFunc;
use crate::segment::{self, FitMethod, Segment};
use crate::ApproxError;

/// A line with coefficients quantised into hardware formats:
/// `y = m·x + q` evaluated as integer ops on raw codes.
///
/// The slope lives in the coefficient format and the bias in a same-width
/// maximal-fraction format (`Q0.(N−1)`, enough for `q ∈ [0.5, 1]`); the
/// multiply-add is carried at full internal precision and rounded **once**
/// to the output format, as the paper's widened MAC does. Rounding the bias
/// to the output grid instead would waste half the error budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct QuantLine {
    /// Raw slope code, in `coef_format`.
    pub slope_raw: i64,
    /// Raw bias code, in the bias format `Q0.(N−1)`.
    pub bias_raw: i64,
}

/// Per-segment payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Entry {
    /// Constant output code (LUT / RALUT families).
    Const(i64),
    /// First-order polynomial (PWL / NUPWL families).
    Line(QuantLine),
}

/// The shared table: boundaries in raw input codes plus payloads.
#[derive(Debug, Clone)]
pub(crate) struct SegTable {
    /// `entries + 1` ascending raw codes; segment `i` covers
    /// `bounds[i] ..= bounds[i+1] - 1`.
    bounds: Vec<i64>,
    payload: Vec<Entry>,
    pub(crate) func: RefFunc,
    pub(crate) in_fmt: QFormat,
    pub(crate) out_fmt: QFormat,
    /// Format slopes are stored in (line payloads only).
    pub(crate) coef_fmt: QFormat,
    /// Format biases are stored in (line payloads only).
    pub(crate) bias_fmt: QFormat,
}

impl SegTable {
    /// Quantises real-valued segment edges into raw-code boundaries over the
    /// function's canonical domain, merging segments that collapse to zero
    /// codes at this input resolution.
    fn raw_bounds(in_fmt: QFormat, func: RefFunc, edges: &[f64]) -> Vec<i64> {
        let in_max = in_fmt.max_value();
        let (lo, hi) = func.domain(in_max);
        let lo_raw =
            Rounding::Floor.quantize(lo.max(in_fmt.min_value()), in_fmt.frac_bits()) as i64;
        let hi_raw =
            Rounding::Floor.quantize(hi.min(in_fmt.max_value()), in_fmt.frac_bits()) as i64;
        let mut bounds = Vec::with_capacity(edges.len());
        bounds.push(lo_raw);
        for &e in &edges[1..edges.len() - 1] {
            let r =
                (Rounding::Floor.quantize(e, in_fmt.frac_bits()) as i64).clamp(lo_raw, hi_raw + 1);
            if r > *bounds.last().expect("non-empty") {
                bounds.push(r);
            }
        }
        if hi_raw + 1 > *bounds.last().expect("non-empty") {
            bounds.push(hi_raw + 1);
        }
        bounds
    }

    /// Builds a constant-per-segment table (LUT/RALUT).
    pub(crate) fn constants(
        func: RefFunc,
        edges: &[f64],
        in_fmt: QFormat,
        out_fmt: QFormat,
    ) -> Result<Self, ApproxError> {
        let bounds = Self::raw_bounds(in_fmt, func, edges);
        if bounds.len() < 2 {
            return Err(ApproxError::BadEntryCount { entries: 0 });
        }
        let res = in_fmt.resolution();
        let payload = bounds
            .windows(2)
            .map(|w| {
                let seg = Segment::new(w[0] as f64 * res, w[1] as f64 * res);
                let c = segment::fit_constant(func, seg);
                Entry::Const(Fx::from_f64(c, out_fmt, Rounding::Nearest).raw())
            })
            .collect();
        Ok(Self {
            bounds,
            payload,
            func,
            in_fmt,
            out_fmt,
            coef_fmt: out_fmt,
            bias_fmt: out_fmt,
        })
    }

    /// Builds a line-per-segment table (PWL/NUPWL): fit, quantise the slope,
    /// refit and quantise the bias (§V.A's procedure keeps `q` in a narrow
    /// range precisely because it is refit after slope quantisation).
    pub(crate) fn lines(
        func: RefFunc,
        edges: &[f64],
        in_fmt: QFormat,
        out_fmt: QFormat,
        coef_fmt: QFormat,
        method: FitMethod,
    ) -> Result<Self, ApproxError> {
        let bounds = Self::raw_bounds(in_fmt, func, edges);
        if bounds.len() < 2 {
            return Err(ApproxError::BadEntryCount { entries: 0 });
        }
        let res = in_fmt.resolution();
        // Bias words hold q in [-1, 1): a same-width maximal-fraction
        // format. (Negative biases occur for the exp family's tail.)
        let bias_fmt = QFormat::new(0, out_fmt.total_bits() - 1).expect("valid bias format");
        let payload = bounds
            .windows(2)
            .map(|w| {
                let seg = Segment::new(w[0] as f64 * res, w[1] as f64 * res);
                let fit = segment::fit_line(func, seg, method);
                let slope_fx = Fx::from_f64(fit.slope, coef_fmt, Rounding::Nearest);
                let bias = segment::refit_bias(func, seg, slope_fx.to_f64());
                let bias_fx = Fx::from_f64(bias, bias_fmt, Rounding::Nearest);
                Entry::Line(QuantLine {
                    slope_raw: slope_fx.raw(),
                    bias_raw: bias_fx.raw(),
                })
            })
            .collect();
        Ok(Self {
            bounds,
            payload,
            func,
            in_fmt,
            out_fmt,
            coef_fmt,
            bias_fmt,
        })
    }

    pub(crate) fn entries(&self) -> usize {
        self.payload.len()
    }

    /// Bits of one payload word.
    pub(crate) fn payload_bits(&self) -> u64 {
        match self.payload.first() {
            Some(Entry::Const(_)) => u64::from(self.out_fmt.total_bits()),
            Some(Entry::Line(_)) => {
                u64::from(self.bias_fmt.total_bits()) + u64::from(self.coef_fmt.total_bits())
            }
            None => 0,
        }
    }

    /// Segment index for a raw input code (already clamped).
    fn locate(&self, raw: i64) -> usize {
        // partition_point returns the count of bounds <= raw among
        // bounds[1..]; that count is exactly the segment index.
        let idx = self.bounds[1..self.bounds.len() - 1].partition_point(|&b| b <= raw);
        idx.min(self.payload.len() - 1)
    }

    /// Bit-accurate evaluation of one input sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in the table's input format.
    pub(crate) fn eval(&self, x: Fx) -> Fx {
        assert_eq!(
            x.format(),
            self.in_fmt,
            "input format {} does not match table format {}",
            x.format(),
            self.in_fmt
        );
        let lo = self.bounds[0];
        let hi = self.bounds[self.bounds.len() - 1] - 1;
        let raw = x.raw().clamp(lo, hi);
        match self.payload[self.locate(raw)] {
            Entry::Const(c) => Fx::from_raw(c, self.out_fmt).expect("table code fits"),
            Entry::Line(line) => {
                // Full-precision multiply-add at the internal scale
                // 2^(coef_f + in_f), rounded once to the output format.
                let internal_f =
                    i64::from(self.coef_fmt.frac_bits()) + i64::from(self.in_fmt.frac_bits());
                let product = line.slope_raw as i128 * raw as i128;
                let bias_shift = internal_f - i64::from(self.bias_fmt.frac_bits());
                let bias = if bias_shift >= 0 {
                    (line.bias_raw as i128) << bias_shift.min(64)
                } else {
                    Rounding::Nearest.shift_right(line.bias_raw as i128, (-bias_shift) as u32)
                };
                let shift = internal_f - i64::from(self.out_fmt.frac_bits());
                let sum = product + bias;
                let scaled = if shift >= 0 {
                    Rounding::Nearest.shift_right(sum, shift as u32)
                } else {
                    sum << (-shift).min(64)
                };
                Fx::from_raw_saturating(self.out_fmt.saturate_raw(scaled), self.out_fmt)
            }
        }
    }

    /// Raw segment boundaries (for inspection/tests).
    #[cfg(test)]
    pub(crate) fn bounds(&self) -> &[i64] {
        &self.bounds
    }
}

/// Default slope storage format for line tables: same total width as the
/// output word with maximal fractional precision (`Q1.(N−2)`), enough to
/// hold every σ/tanh/exp slope magnitude (≤ 1 after the paper's ×4 tanh
/// scaling) at the finest precision a same-width word allows.
pub(crate) fn default_coef_format(out_fmt: QFormat) -> QFormat {
    QFormat::new(1, out_fmt.total_bits() - 2).expect("valid coefficient format")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> QFormat {
        QFormat::new(4, 11).unwrap()
    }

    #[test]
    fn locate_maps_codes_to_segments() {
        let edges = [0.0, 4.0, 8.0, 16.0];
        let t = SegTable::constants(RefFunc::Sigmoid, &edges, q(), q()).unwrap();
        assert_eq!(t.entries(), 3);
        assert_eq!(t.locate(0), 0);
        assert_eq!(t.locate(4 * 2048 - 1), 0);
        assert_eq!(t.locate(4 * 2048), 1);
        assert_eq!(t.locate(8 * 2048), 2);
        assert_eq!(t.locate(q().max_raw()), 2);
    }

    #[test]
    fn eval_clamps_out_of_domain_inputs() {
        let edges = [0.0, 8.0, 16.0];
        let t = SegTable::constants(RefFunc::Sigmoid, &edges, q(), q()).unwrap();
        let neg = Fx::from_f64(-3.0, q(), Rounding::Nearest);
        let zero = Fx::zero(q());
        assert_eq!(t.eval(neg), t.eval(zero));
    }

    #[test]
    fn degenerate_edges_are_merged() {
        // Two edges closer than one input LSB collapse into one segment.
        let edges = [0.0, 1.0, 1.0 + 1e-9, 16.0];
        let t = SegTable::constants(RefFunc::Sigmoid, &edges, q(), q()).unwrap();
        assert_eq!(t.entries(), 2);
    }

    #[test]
    fn line_eval_matches_f64_model_within_quantisation() {
        let edges: Vec<f64> = (0..=53).map(|i| 16.0 * i as f64 / 53.0).collect();
        let t = SegTable::lines(
            RefFunc::Sigmoid,
            &edges,
            q(),
            q(),
            default_coef_format(q()),
            FitMethod::Minimax,
        )
        .unwrap();
        for raw in (0..q().max_raw()).step_by(997) {
            let x = Fx::from_raw(raw, q()).unwrap();
            let y = t.eval(x).to_f64();
            let reference = RefFunc::Sigmoid.eval(x.to_f64());
            assert!(
                (y - reference).abs() < 2e-3,
                "x={} y={y} ref={reference}",
                x.to_f64()
            );
        }
    }

    #[test]
    fn exp_domain_covers_negative_codes() {
        let edges = [-16.0, -8.0, -1.0, 0.0];
        let t = SegTable::constants(RefFunc::ExpNeg, &edges, q(), q()).unwrap();
        // The table reaches the format's most negative code, -2^ib.
        assert_eq!(t.bounds()[0], q().min_raw());
        let x = Fx::from_f64(-0.5, q(), Rounding::Nearest);
        let y = t.eval(x).to_f64();
        assert!(y > 0.0 && y <= 1.0);
    }
}
