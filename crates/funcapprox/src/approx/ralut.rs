//! Range-addressable constant lookup table (the *RALUT* family of §VI).

use nacu_fixed::{Fx, QFormat};

use crate::approx::table::SegTable;
use crate::approx::{ApproxError, FixedApprox};
use crate::reference::RefFunc;
use crate::segment::{self, SegmentKind};

/// Hard ceiling on RALUT sizes considered by the tolerance search; larger
/// tables would dominate a real design's area budget by orders of magnitude.
const MAX_ENTRIES: usize = 1 << 16;

/// A RALUT: non-uniform segments sized by the local gradient, one constant
/// per segment. Used by the tanh implementations of \[4\], \[5\] and \[8\] the
/// paper compares against.
///
/// # Example
///
/// ```
/// use nacu_fixed::QFormat;
/// use nacu_funcapprox::{reference::RefFunc, FixedApprox, RangeLut};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fmt = QFormat::new(4, 11)?;
/// let ralut = RangeLut::fit_tolerance(RefFunc::Tanh, 1e-2, fmt, fmt)?;
/// assert!(ralut.entries() < 100); // far fewer than a uniform LUT at 1e-2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RangeLut {
    table: SegTable,
}

impl RangeLut {
    /// Builds the smallest RALUT whose per-segment minimax error is within
    /// `tolerance`, via the greedy widest-segment-first construction.
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::ToleranceUnreachable`] if more than 2¹⁶
    /// segments would be required.
    pub fn fit_tolerance(
        func: RefFunc,
        tolerance: f64,
        in_fmt: QFormat,
        out_fmt: QFormat,
    ) -> Result<Self, ApproxError> {
        let (lo, hi) = func.domain(in_fmt.max_value());
        let segs =
            segment::greedy_segments(func, lo, hi, tolerance, SegmentKind::Constant, MAX_ENTRIES)
                .ok_or(ApproxError::ToleranceUnreachable { tolerance })?;
        let edges: Vec<f64> = segs
            .iter()
            .map(|s| s.lo)
            .chain(std::iter::once(hi))
            .collect();
        Ok(Self {
            table: SegTable::constants(func, &edges, in_fmt, out_fmt)?,
        })
    }

    /// Builds the most accurate RALUT with at most `entries` segments, by
    /// bisecting on the tolerance (the error is monotone in the tolerance).
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::BadEntryCount`] if `entries` is zero.
    pub fn fit_entries(
        func: RefFunc,
        entries: usize,
        in_fmt: QFormat,
        out_fmt: QFormat,
    ) -> Result<Self, ApproxError> {
        if entries == 0 {
            return Err(ApproxError::BadEntryCount { entries });
        }
        let (lo, hi) = func.domain(in_fmt.max_value());
        // Bisect tolerance until the greedy construction lands at or just
        // under the entry budget.
        let mut tol_lo = 1e-12_f64; // too tight: too many segments
        let mut tol_hi = 1.0_f64; // loose: one segment
        let mut best: Option<Vec<segment::Segment>> = None;
        for _ in 0..26 {
            let tol = (tol_lo * tol_hi).sqrt();
            match segment::greedy_segments(func, lo, hi, tol, SegmentKind::Constant, MAX_ENTRIES) {
                Some(segs) if segs.len() <= entries => {
                    let used = segs.len();
                    best = Some(segs);
                    tol_hi = tol;
                    if used * 10 >= entries * 9 {
                        break; // within 10% of the budget: good enough
                    }
                }
                _ => tol_lo = tol,
            }
        }
        let segs = best.ok_or(ApproxError::BadEntryCount { entries })?;
        let edges: Vec<f64> = segs
            .iter()
            .map(|s| s.lo)
            .chain(std::iter::once(hi))
            .collect();
        Ok(Self {
            table: SegTable::constants(func, &edges, in_fmt, out_fmt)?,
        })
    }
}

impl FixedApprox for RangeLut {
    fn eval(&self, x: Fx) -> Fx {
        self.table.eval(x)
    }

    fn entries(&self) -> usize {
        self.table.entries()
    }

    fn family(&self) -> &'static str {
        "RALUT"
    }

    fn func(&self) -> RefFunc {
        self.table.func
    }

    fn input_format(&self) -> QFormat {
        self.table.in_fmt
    }

    fn output_format(&self) -> QFormat {
        self.table.out_fmt
    }

    fn table_bits(&self) -> u64 {
        // Each record stores its range bound alongside the constant.
        self.table.entries() as u64
            * (u64::from(self.table.out_fmt.total_bits())
                + u64::from(self.table.in_fmt.total_bits()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::UniformLut;

    fn q() -> QFormat {
        QFormat::new(4, 11).unwrap()
    }

    #[test]
    fn meets_requested_tolerance() {
        let tol = 1e-2;
        let ralut = RangeLut::fit_tolerance(RefFunc::Sigmoid, tol, q(), q()).unwrap();
        let report = metrics::sweep(&ralut, RefFunc::Sigmoid);
        // Quantisation adds at most one output LSB on top of the fit error.
        assert!(report.max_error <= tol + q().resolution());
    }

    #[test]
    fn beats_uniform_lut_at_equal_entries() {
        let ralut = RangeLut::fit_entries(RefFunc::Sigmoid, 64, q(), q()).unwrap();
        let lut = UniformLut::fit(RefFunc::Sigmoid, 64, q(), q()).unwrap();
        let e_ralut = metrics::sweep(&ralut, RefFunc::Sigmoid).max_error;
        let e_lut = metrics::sweep(&lut, RefFunc::Sigmoid).max_error;
        assert!(ralut.entries() <= 64);
        assert!(
            e_ralut < e_lut,
            "non-uniform {e_ralut} should beat uniform {e_lut}"
        );
    }

    #[test]
    fn entry_budget_is_respected() {
        for budget in [4, 16, 127] {
            let ralut = RangeLut::fit_entries(RefFunc::Tanh, budget, q(), q()).unwrap();
            assert!(ralut.entries() <= budget, "budget {budget}");
        }
    }

    #[test]
    fn impossible_tolerance_is_reported() {
        assert!(matches!(
            RangeLut::fit_tolerance(RefFunc::Sigmoid, 1e-13, q(), q()),
            Err(ApproxError::ToleranceUnreachable { .. })
        ));
    }

    #[test]
    fn zero_entry_budget_is_rejected() {
        assert!(RangeLut::fit_entries(RefFunc::Sigmoid, 0, q(), q()).is_err());
    }
}
