//! Non-uniform piecewise-linear approximation (the *NUPWL* family of §VI,
//! used by the σ implementation of \[6\]).

use nacu_fixed::{Fx, QFormat};

use crate::approx::table::{default_coef_format, SegTable};
use crate::approx::{ApproxError, FixedApprox};
use crate::reference::RefFunc;
use crate::segment::{self, FitMethod, SegmentKind};

/// Segment-count ceiling for the greedy tolerance search.
const MAX_ENTRIES: usize = 1 << 16;

/// A NUPWL table: gradient-adapted segment widths, each storing a quantised
/// `(m₁, q)` line.
///
/// Fig. 4b shows NUPWL edging out uniform PWL at equal entry counts, but
/// only marginally once past the knee of the error curve — one of the
/// paper's arguments for choosing plain PWL in NACU.
///
/// # Example
///
/// ```
/// use nacu_fixed::QFormat;
/// use nacu_funcapprox::{reference::RefFunc, FixedApprox, NonUniformPwl};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fmt = QFormat::new(4, 11)?;
/// let nupwl = NonUniformPwl::fit_tolerance(RefFunc::Sigmoid, 1e-3, fmt, fmt)?;
/// assert!(nupwl.entries() < 40);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NonUniformPwl {
    table: SegTable,
}

impl NonUniformPwl {
    /// Builds the smallest NUPWL whose per-segment minimax fit error is
    /// within `tolerance`.
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::ToleranceUnreachable`] if more than 2¹⁶
    /// segments would be required.
    pub fn fit_tolerance(
        func: RefFunc,
        tolerance: f64,
        in_fmt: QFormat,
        out_fmt: QFormat,
    ) -> Result<Self, ApproxError> {
        let (lo, hi) = func.domain(in_fmt.max_value());
        let segs =
            segment::greedy_segments(func, lo, hi, tolerance, SegmentKind::Linear, MAX_ENTRIES)
                .ok_or(ApproxError::ToleranceUnreachable { tolerance })?;
        let edges: Vec<f64> = segs
            .iter()
            .map(|s| s.lo)
            .chain(std::iter::once(hi))
            .collect();
        Ok(Self {
            table: SegTable::lines(
                func,
                &edges,
                in_fmt,
                out_fmt,
                default_coef_format(out_fmt),
                FitMethod::Minimax,
            )?,
        })
    }

    /// Builds the most accurate NUPWL using at most `entries` segments
    /// (bisection on the tolerance).
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::BadEntryCount`] if `entries` is zero.
    pub fn fit_entries(
        func: RefFunc,
        entries: usize,
        in_fmt: QFormat,
        out_fmt: QFormat,
    ) -> Result<Self, ApproxError> {
        if entries == 0 {
            return Err(ApproxError::BadEntryCount { entries });
        }
        let (lo, hi) = func.domain(in_fmt.max_value());
        let mut tol_lo = 1e-14_f64;
        let mut tol_hi = 1.0_f64;
        let mut best: Option<Vec<segment::Segment>> = None;
        for _ in 0..26 {
            let tol = (tol_lo * tol_hi).sqrt();
            match segment::greedy_segments(func, lo, hi, tol, SegmentKind::Linear, MAX_ENTRIES) {
                Some(segs) if segs.len() <= entries => {
                    let used = segs.len();
                    best = Some(segs);
                    tol_hi = tol;
                    if used * 10 >= entries * 9 {
                        break; // within 10% of the budget: good enough
                    }
                }
                _ => tol_lo = tol,
            }
        }
        let segs = best.ok_or(ApproxError::BadEntryCount { entries })?;
        let edges: Vec<f64> = segs
            .iter()
            .map(|s| s.lo)
            .chain(std::iter::once(hi))
            .collect();
        Ok(Self {
            table: SegTable::lines(
                func,
                &edges,
                in_fmt,
                out_fmt,
                default_coef_format(out_fmt),
                FitMethod::Minimax,
            )?,
        })
    }
}

impl FixedApprox for NonUniformPwl {
    fn eval(&self, x: Fx) -> Fx {
        self.table.eval(x)
    }

    fn entries(&self) -> usize {
        self.table.entries()
    }

    fn family(&self) -> &'static str {
        "NUPWL"
    }

    fn func(&self) -> RefFunc {
        self.table.func
    }

    fn input_format(&self) -> QFormat {
        self.table.in_fmt
    }

    fn output_format(&self) -> QFormat {
        self.table.out_fmt
    }

    fn table_bits(&self) -> u64 {
        // Range bound + slope + bias per record.
        self.table.entries() as u64
            * (u64::from(self.table.in_fmt.total_bits())
                + u64::from(self.table.out_fmt.total_bits())
                + u64::from(self.table.coef_fmt.total_bits()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::UniformPwl;

    fn q() -> QFormat {
        QFormat::new(4, 11).unwrap()
    }

    #[test]
    fn needs_fewer_entries_than_uniform_pwl_for_same_tolerance() {
        let tol = 1e-4;
        let nupwl = NonUniformPwl::fit_tolerance(RefFunc::Sigmoid, tol, q(), q()).unwrap();
        // Find the uniform PWL entry count that reaches the same fit error.
        let mut uniform_entries = None;
        for n in (nupwl.entries()..400).step_by(1) {
            let pwl = UniformPwl::fit(RefFunc::Sigmoid, n, q(), q()).unwrap();
            if metrics::sweep(&pwl, RefFunc::Sigmoid).max_error
                <= metrics::sweep(&nupwl, RefFunc::Sigmoid).max_error
            {
                uniform_entries = Some(n);
                break;
            }
        }
        let uniform_entries = uniform_entries.expect("uniform PWL should catch up eventually");
        assert!(
            nupwl.entries() <= uniform_entries,
            "nupwl {} vs uniform {}",
            nupwl.entries(),
            uniform_entries
        );
    }

    #[test]
    fn meets_tolerance_modulo_quantisation() {
        let tol = 1e-3;
        let nupwl = NonUniformPwl::fit_tolerance(RefFunc::Tanh, tol, q(), q()).unwrap();
        let report = metrics::sweep(&nupwl, RefFunc::Tanh);
        // Fit error ≤ tol; quantisation of x, m, q and y adds a few LSBs.
        assert!(report.max_error <= tol + 3.0 * q().resolution());
    }

    #[test]
    fn entry_budget_is_respected() {
        let nupwl = NonUniformPwl::fit_entries(RefFunc::Sigmoid, 7, q(), q()).unwrap();
        assert!(nupwl.entries() <= 7);
    }

    #[test]
    fn family_metadata() {
        let nupwl = NonUniformPwl::fit_entries(RefFunc::Sigmoid, 8, q(), q()).unwrap();
        assert_eq!(nupwl.family(), "NUPWL");
        assert_eq!(nupwl.func(), RefFunc::Sigmoid);
        assert_eq!(nupwl.input_format(), q());
    }
}
