//! The four hardware approximation families of §VI, evaluated bit-accurately.

pub(crate) mod table;

pub mod lut;
pub mod nupwl;
pub mod poly2;
pub mod pwl;
pub mod ralut;

use std::error::Error;
use std::fmt;

use nacu_fixed::{Fx, FxError, QFormat};

use crate::reference::RefFunc;

/// Errors produced while constructing an approximation table.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ApproxError {
    /// The requested entry count is zero or exceeds the table budget.
    BadEntryCount {
        /// The offending count.
        entries: usize,
    },
    /// The requested tolerance cannot be met within `max_entries` segments
    /// (or at all, if it is below the output quantisation floor).
    ToleranceUnreachable {
        /// The requested tolerance.
        tolerance: f64,
    },
    /// A fixed-point operation failed while quantising table contents.
    Fixed(FxError),
}

impl fmt::Display for ApproxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxError::BadEntryCount { entries } => {
                write!(f, "invalid table entry count: {entries}")
            }
            ApproxError::ToleranceUnreachable { tolerance } => {
                write!(f, "tolerance {tolerance:e} is unreachable")
            }
            ApproxError::Fixed(e) => write!(f, "fixed-point failure: {e}"),
        }
    }
}

impl Error for ApproxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ApproxError::Fixed(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<FxError> for ApproxError {
    fn from(e: FxError) -> Self {
        ApproxError::Fixed(e)
    }
}

/// A bit-accurate fixed-point approximation of one [`RefFunc`] over its
/// canonical domain.
///
/// Implementations receive the raw input code and return the raw output
/// code exactly as the corresponding hardware block would; inputs outside
/// the approximation domain clamp to the nearest edge (the saturation
/// behaviour of a real table address decoder).
///
/// The trait is object-safe so sweeps (Fig. 4) can treat the families
/// uniformly.
pub trait FixedApprox {
    /// Evaluates the approximation for one input sample.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x` is not in [`Self::input_format`];
    /// build inputs with the same format the table was fitted for.
    fn eval(&self, x: Fx) -> Fx;

    /// Number of table entries (LUT words / segment records).
    fn entries(&self) -> usize;

    /// The family's §VI name (`"LUT"`, `"RALUT"`, `"PWL"`, `"NUPWL"`).
    fn family(&self) -> &'static str;

    /// The reference function this table approximates.
    fn func(&self) -> RefFunc;

    /// Input fixed-point format.
    fn input_format(&self) -> QFormat;

    /// Output fixed-point format.
    fn output_format(&self) -> QFormat;

    /// Storage cost in bits (entries × payload width), the quantity behind
    /// the area axis of Fig. 4a.
    fn table_bits(&self) -> u64;
}
