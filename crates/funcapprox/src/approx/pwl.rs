//! Uniform-segment piecewise-linear approximation (the *PWL* family of
//! §VI — the family NACU's coefficient LUT belongs to).

use nacu_fixed::{Fx, QFormat};

use crate::approx::table::{default_coef_format, SegTable};
use crate::approx::{ApproxError, FixedApprox};
use crate::reference::RefFunc;
use crate::segment::{self, FitMethod};

/// A uniform PWL table: equal-width segments, each storing a quantised
/// `(m₁, q)` pair evaluated as `m₁·x + q` (Eq. 8).
///
/// The fitting pipeline matches what a careful hardware designer does:
/// minimax line fit → quantise the slope → **refit** the bias around the
/// quantised slope → quantise the bias. The refit step is what keeps `q`
/// inside `[0.5, 1]` for σ, the property §V.A's bit-trick units rely on.
///
/// # Example
///
/// ```
/// use nacu_fixed::QFormat;
/// use nacu_funcapprox::{reference::RefFunc, FixedApprox, UniformPwl, metrics};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fmt = QFormat::new(4, 11)?;
/// let pwl = UniformPwl::fit(RefFunc::Sigmoid, 53, fmt, fmt)?; // the paper's table
/// let report = metrics::sweep(&pwl, RefFunc::Sigmoid);
/// assert!(report.max_error < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct UniformPwl {
    table: SegTable,
}

impl UniformPwl {
    /// Builds a PWL table with `entries` equal segments using the minimax
    /// fit and the default coefficient format (`Q1.(N−2)`).
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::BadEntryCount`] if `entries` is zero or
    /// exceeds the representable input codes.
    pub fn fit(
        func: RefFunc,
        entries: usize,
        in_fmt: QFormat,
        out_fmt: QFormat,
    ) -> Result<Self, ApproxError> {
        Self::fit_with(
            func,
            entries,
            in_fmt,
            out_fmt,
            default_coef_format(out_fmt),
            FitMethod::Minimax,
        )
    }

    /// Builds a PWL table with full control over the coefficient format and
    /// fitting method (used by the Fig. 4 ablations).
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::BadEntryCount`] if `entries` is zero or
    /// exceeds the representable input codes.
    pub fn fit_with(
        func: RefFunc,
        entries: usize,
        in_fmt: QFormat,
        out_fmt: QFormat,
        coef_fmt: QFormat,
        method: FitMethod,
    ) -> Result<Self, ApproxError> {
        let codes = usize::try_from(in_fmt.max_raw()).unwrap_or(usize::MAX);
        if entries == 0 || entries > codes {
            return Err(ApproxError::BadEntryCount { entries });
        }
        let (lo, hi) = func.domain(in_fmt.max_value());
        let edges: Vec<f64> = segment::uniform_segments(lo, hi, entries)
            .iter()
            .map(|s| s.lo)
            .chain(std::iter::once(hi))
            .collect();
        Ok(Self {
            table: SegTable::lines(func, &edges, in_fmt, out_fmt, coef_fmt, method)?,
        })
    }

    /// The coefficient (slope) storage format.
    #[must_use]
    pub fn coef_format(&self) -> QFormat {
        self.table.coef_fmt
    }
}

impl FixedApprox for UniformPwl {
    fn eval(&self, x: Fx) -> Fx {
        self.table.eval(x)
    }

    fn entries(&self) -> usize {
        self.table.entries()
    }

    fn family(&self) -> &'static str {
        "PWL"
    }

    fn func(&self) -> RefFunc {
        self.table.func
    }

    fn input_format(&self) -> QFormat {
        self.table.in_fmt
    }

    fn output_format(&self) -> QFormat {
        self.table.out_fmt
    }

    fn table_bits(&self) -> u64 {
        self.table.entries() as u64 * self.table.payload_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::UniformLut;

    fn q() -> QFormat {
        QFormat::new(4, 11).unwrap()
    }

    #[test]
    fn paper_53_entry_table_reaches_sub_milli_error() {
        let pwl = UniformPwl::fit(RefFunc::Sigmoid, 53, q(), q()).unwrap();
        let report = metrics::sweep(&pwl, RefFunc::Sigmoid);
        // §VII.A: RMSE 2.07e-4 at 16 bits; max error stays in the same decade.
        assert!(report.max_error < 1e-3, "max error {}", report.max_error);
        assert!(report.rmse < 4e-4, "rmse {}", report.rmse);
        assert!(report.correlation > 0.999);
    }

    #[test]
    fn pwl_crushes_lut_at_equal_entries() {
        let pwl = UniformPwl::fit(RefFunc::Sigmoid, 53, q(), q()).unwrap();
        let lut = UniformLut::fit(RefFunc::Sigmoid, 53, q(), q()).unwrap();
        let e_pwl = metrics::sweep(&pwl, RefFunc::Sigmoid).max_error;
        let e_lut = metrics::sweep(&lut, RefFunc::Sigmoid).max_error;
        assert!(
            e_pwl * 4.0 < e_lut,
            "PWL {e_pwl} should be ≫ better than LUT {e_lut}"
        );
    }

    #[test]
    fn minimax_fit_beats_interpolation_fit() {
        let mm = UniformPwl::fit_with(
            RefFunc::Tanh,
            16,
            q(),
            q(),
            super::default_coef_format(q()),
            FitMethod::Minimax,
        )
        .unwrap();
        let it = UniformPwl::fit_with(
            RefFunc::Tanh,
            16,
            q(),
            q(),
            super::default_coef_format(q()),
            FitMethod::Interpolate,
        )
        .unwrap();
        let e_mm = metrics::sweep(&mm, RefFunc::Tanh).max_error;
        let e_it = metrics::sweep(&it, RefFunc::Tanh).max_error;
        assert!(e_mm <= e_it);
    }

    #[test]
    fn table_bits_accounts_for_two_words_per_entry() {
        let pwl = UniformPwl::fit(RefFunc::Sigmoid, 53, q(), q()).unwrap();
        assert_eq!(pwl.table_bits(), 53 * (16 + 16));
    }

    #[test]
    fn rejects_zero_entries() {
        assert!(UniformPwl::fit(RefFunc::Sigmoid, 0, q(), q()).is_err());
    }

    #[test]
    fn exp_pwl_is_accurate_on_negative_domain() {
        let pwl = UniformPwl::fit(RefFunc::ExpNeg, 64, q(), q()).unwrap();
        let report = metrics::sweep(&pwl, RefFunc::ExpNeg);
        assert!(report.max_error < 5e-3, "max error {}", report.max_error);
    }
}
