//! Uniform-segment constant lookup table (the *LUT* family of §VI).

use nacu_fixed::{Fx, QFormat};

use crate::approx::table::SegTable;
use crate::approx::{ApproxError, FixedApprox};
use crate::reference::RefFunc;
use crate::segment;

/// A classic LUT: the domain is split into equal segments and each segment
/// stores one pre-computed output constant.
///
/// This is the cheapest family per access but the most expensive per unit
/// accuracy — Fig. 4a shows it needing ~1026 entries where PWL needs ~50.
///
/// # Example
///
/// ```
/// use nacu_fixed::{Fx, QFormat, Rounding};
/// use nacu_funcapprox::{reference::RefFunc, FixedApprox, UniformLut};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fmt = QFormat::new(4, 11)?;
/// let lut = UniformLut::fit(RefFunc::Sigmoid, 1024, fmt, fmt)?;
/// let y = lut.eval(Fx::from_f64(1.0, fmt, Rounding::Nearest));
/// assert!((y.to_f64() - 0.731_058).abs() < 2e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct UniformLut {
    table: SegTable,
}

impl UniformLut {
    /// Builds a LUT with `entries` equal-width segments over the function's
    /// canonical domain, each holding its minimax constant quantised to
    /// `out_fmt`.
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::BadEntryCount`] if `entries` is zero or
    /// exceeds the number of representable input codes.
    pub fn fit(
        func: RefFunc,
        entries: usize,
        in_fmt: QFormat,
        out_fmt: QFormat,
    ) -> Result<Self, ApproxError> {
        let codes = usize::try_from(in_fmt.max_raw()).unwrap_or(usize::MAX);
        if entries == 0 || entries > codes {
            return Err(ApproxError::BadEntryCount { entries });
        }
        let (lo, hi) = func.domain(in_fmt.max_value());
        let edges: Vec<f64> = segment::uniform_segments(lo, hi, entries)
            .iter()
            .map(|s| s.lo)
            .chain(std::iter::once(hi))
            .collect();
        Ok(Self {
            table: SegTable::constants(func, &edges, in_fmt, out_fmt)?,
        })
    }
}

impl FixedApprox for UniformLut {
    fn eval(&self, x: Fx) -> Fx {
        self.table.eval(x)
    }

    fn entries(&self) -> usize {
        self.table.entries()
    }

    fn family(&self) -> &'static str {
        "LUT"
    }

    fn func(&self) -> RefFunc {
        self.table.func
    }

    fn input_format(&self) -> QFormat {
        self.table.in_fmt
    }

    fn output_format(&self) -> QFormat {
        self.table.out_fmt
    }

    fn table_bits(&self) -> u64 {
        self.table.entries() as u64 * self.table.payload_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use nacu_fixed::Rounding;

    fn q() -> QFormat {
        QFormat::new(4, 11).unwrap()
    }

    #[test]
    fn error_shrinks_with_entries() {
        let coarse = UniformLut::fit(RefFunc::Sigmoid, 16, q(), q()).unwrap();
        let fine = UniformLut::fit(RefFunc::Sigmoid, 1024, q(), q()).unwrap();
        let e_coarse = metrics::sweep(&coarse, RefFunc::Sigmoid).max_error;
        let e_fine = metrics::sweep(&fine, RefFunc::Sigmoid).max_error;
        assert!(e_fine < e_coarse / 8.0, "{e_fine} vs {e_coarse}");
    }

    #[test]
    fn thousand_entry_lut_reaches_quantisation_decade() {
        // Fig. 4a: ~1026 entries reach the 10-fractional-bit level (2^-10)
        // at the Eq. 7 minimal range for f_b = 10, which is i_b = 3.
        let fmt = QFormat::new(3, 10).unwrap();
        let lut = UniformLut::fit(RefFunc::Sigmoid, 1026, fmt, fmt).unwrap();
        let report = metrics::sweep(&lut, RefFunc::Sigmoid);
        assert!(
            report.max_error <= 2.0_f64.powi(-10) * 1.5,
            "max error {}",
            report.max_error
        );
    }

    #[test]
    fn rejects_zero_and_oversized_tables() {
        assert!(UniformLut::fit(RefFunc::Sigmoid, 0, q(), q()).is_err());
        assert!(UniformLut::fit(RefFunc::Sigmoid, 1 << 20, q(), q()).is_err());
    }

    #[test]
    fn output_is_monotone_for_monotone_function() {
        let lut = UniformLut::fit(RefFunc::Sigmoid, 256, q(), q()).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for raw in (0..q().max_raw()).step_by(64) {
            let y = lut.eval(Fx::from_raw(raw, q()).unwrap()).to_f64();
            assert!(y >= prev, "LUT output must not decrease");
            prev = y;
        }
    }

    #[test]
    fn table_bits_counts_entries_times_width() {
        let lut = UniformLut::fit(RefFunc::Sigmoid, 64, q(), q()).unwrap();
        assert_eq!(lut.table_bits(), 64 * 16);
    }

    #[test]
    fn works_for_exp_family_domain() {
        let lut = UniformLut::fit(RefFunc::ExpNeg, 512, q(), q()).unwrap();
        // A 512-entry constant LUT over [-16, 0] has segments ~0.031 wide;
        // near x = 0 the exp gradient is 1, so the error bound is w/2.
        let y0 = lut.eval(Fx::zero(q())).to_f64();
        assert!((y0 - 1.0).abs() < 0.02, "y0 = {y0}");
        let ym = lut
            .eval(Fx::from_f64(-16.0, q(), Rounding::Nearest))
            .to_f64();
        assert!(ym.abs() < 0.01);
    }
}
