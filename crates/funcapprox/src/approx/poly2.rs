//! Second-order polynomial table — the "higher-order" family §VI mentions
//! has "no widely accepted acronym". Used by the Taylor-based related work
//! (\[6\], \[10\], \[13\]) and by the Fig. 4 ablations: one more multiplier per
//! evaluation buys quadratically better per-segment accuracy.

use nacu_fixed::{Fx, QFormat, Rounding};

use crate::approx::{ApproxError, FixedApprox};
use crate::reference::RefFunc;
use crate::segment::{self, Segment};

/// A uniform-segment second-order table: each entry stores quantised
/// `(a, b, c)` with `y = a·x² + b·x + c` evaluated at full internal
/// precision and rounded once.
///
/// # Example
///
/// ```
/// use nacu_fixed::QFormat;
/// use nacu_funcapprox::{reference::RefFunc, FixedApprox, SecondOrderTable, metrics};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fmt = QFormat::new(4, 11)?;
/// // 16 quadratic segments rival ~50 linear ones.
/// let table = SecondOrderTable::fit(RefFunc::Sigmoid, 16, fmt, fmt)?;
/// let report = metrics::sweep(&table, RefFunc::Sigmoid);
/// assert!(report.max_error < 2e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SecondOrderTable {
    /// Raw segment boundaries (ascending input codes).
    bounds: Vec<i64>,
    /// Quantised `(a, b, c)` raw codes per segment.
    coeffs: Vec<(i64, i64, i64)>,
    func: RefFunc,
    in_fmt: QFormat,
    out_fmt: QFormat,
    /// Coefficient format (shared by a, b, c): `Q2.(N−3)` of a double-width
    /// word, giving quadratic terms enough headroom.
    coef_fmt: QFormat,
}

impl SecondOrderTable {
    /// Builds a table with `entries` uniform segments.
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::BadEntryCount`] if `entries` is zero or
    /// exceeds the representable input codes.
    pub fn fit(
        func: RefFunc,
        entries: usize,
        in_fmt: QFormat,
        out_fmt: QFormat,
    ) -> Result<Self, ApproxError> {
        let codes = usize::try_from(in_fmt.max_raw()).unwrap_or(usize::MAX);
        if entries == 0 || entries > codes {
            return Err(ApproxError::BadEntryCount { entries });
        }
        // Double-width coefficient words: quadratic coefficients of σ/tanh
        // are small but their products need fractional headroom.
        let coef_fmt = QFormat::new(2, (2 * out_fmt.total_bits() - 3).min(40))
            .expect("valid coefficient format");
        let (lo, hi) = func.domain(in_fmt.max_value());
        let lo_raw =
            Rounding::Floor.quantize(lo.max(in_fmt.min_value()), in_fmt.frac_bits()) as i64;
        let hi_raw =
            Rounding::Floor.quantize(hi.min(in_fmt.max_value()), in_fmt.frac_bits()) as i64;
        let span = hi_raw - lo_raw + 1;
        let mut bounds: Vec<i64> = (0..=entries as i64)
            .map(|i| lo_raw + i * span / entries as i64)
            .collect();
        bounds.dedup();
        let res = in_fmt.resolution();
        let coeffs = bounds
            .windows(2)
            .map(|w| {
                let seg = Segment::new(w[0] as f64 * res, w[1] as f64 * res);
                let fit = segment::fit_quadratic(func, seg);
                let q = |v: f64| Fx::from_f64(v, coef_fmt, Rounding::Nearest).raw();
                (q(fit.a), q(fit.b), q(fit.c))
            })
            .collect();
        Ok(Self {
            bounds,
            coeffs,
            func,
            in_fmt,
            out_fmt,
            coef_fmt,
        })
    }
}

impl FixedApprox for SecondOrderTable {
    fn eval(&self, x: Fx) -> Fx {
        assert_eq!(x.format(), self.in_fmt, "input format mismatch");
        let lo = self.bounds[0];
        let hi = self.bounds[self.bounds.len() - 1] - 1;
        let raw = x.raw().clamp(lo, hi);
        let idx = self.bounds[1..self.bounds.len() - 1]
            .partition_point(|&b| b <= raw)
            .min(self.coeffs.len() - 1);
        let (a, b, c) = self.coeffs[idx];
        let cf = self.coef_fmt.frac_bits();
        let xf = self.in_fmt.frac_bits();
        // Horner at full precision: ((a·x >> xf) + b)·x, then add c and
        // round once to the output scale (everything at 2^(cf+xf) … 2^cf).
        let ax = Rounding::Nearest.shift_right(a as i128 * raw as i128, xf);
        let inner = ax + b as i128; // scale 2^cf
        let inner_x = inner * raw as i128; // scale 2^(cf+xf)
        let c_aligned = (c as i128) << xf; // scale 2^(cf+xf)
        let total = inner_x + c_aligned;
        let shift = i64::from(cf) + i64::from(xf) - i64::from(self.out_fmt.frac_bits());
        let y = if shift >= 0 {
            Rounding::Nearest.shift_right(total, shift as u32)
        } else {
            total << (-shift).min(64)
        };
        Fx::from_raw_saturating(self.out_fmt.saturate_raw(y), self.out_fmt)
    }

    fn entries(&self) -> usize {
        self.coeffs.len()
    }

    fn family(&self) -> &'static str {
        "POLY2"
    }

    fn func(&self) -> RefFunc {
        self.func
    }

    fn input_format(&self) -> QFormat {
        self.in_fmt
    }

    fn output_format(&self) -> QFormat {
        self.out_fmt
    }

    fn table_bits(&self) -> u64 {
        self.coeffs.len() as u64 * 3 * u64::from(self.coef_fmt.total_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::UniformPwl;

    fn q() -> QFormat {
        QFormat::new(4, 11).unwrap()
    }

    #[test]
    fn sixteen_quadratic_segments_rival_fifty_linear_ones() {
        // Quadratic residual scales as w³: 16 segments of width 1 match
        // the 53-segment linear table's error decade with ~3x fewer entries.
        let quad = SecondOrderTable::fit(RefFunc::Sigmoid, 16, q(), q()).unwrap();
        let pwl = UniformPwl::fit(RefFunc::Sigmoid, 53, q(), q()).unwrap();
        let e_quad = metrics::sweep(&quad, RefFunc::Sigmoid).max_error;
        let e_pwl = metrics::sweep(&pwl, RefFunc::Sigmoid).max_error;
        assert!(
            e_quad < 2.0 * e_pwl,
            "16-entry quad {e_quad} vs 53-entry pwl {e_pwl}"
        );
    }

    #[test]
    fn error_shrinks_fast_with_entries() {
        let coarse = SecondOrderTable::fit(RefFunc::Tanh, 4, q(), q()).unwrap();
        let fine = SecondOrderTable::fit(RefFunc::Tanh, 16, q(), q()).unwrap();
        let e_coarse = metrics::sweep(&coarse, RefFunc::Tanh).max_error;
        let e_fine = metrics::sweep(&fine, RefFunc::Tanh).max_error;
        assert!(e_fine < e_coarse, "{e_fine} vs {e_coarse}");
    }

    #[test]
    fn exp_family_works_too() {
        let t = SecondOrderTable::fit(RefFunc::ExpNeg, 32, q(), q()).unwrap();
        let report = metrics::sweep(&t, RefFunc::ExpNeg);
        assert!(report.max_error < 2e-3, "max {}", report.max_error);
    }

    #[test]
    fn metadata_and_cost() {
        let t = SecondOrderTable::fit(RefFunc::Sigmoid, 4, q(), q()).unwrap();
        assert_eq!(t.family(), "POLY2");
        assert_eq!(t.entries(), 4);
        assert!(t.table_bits() > 4 * 3 * 16);
    }

    #[test]
    fn rejects_bad_entry_counts() {
        assert!(SecondOrderTable::fit(RefFunc::Sigmoid, 0, q(), q()).is_err());
        assert!(SecondOrderTable::fit(RefFunc::Sigmoid, 1 << 20, q(), q()).is_err());
    }
}
