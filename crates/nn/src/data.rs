//! Seeded synthetic datasets.
//!
//! The paper's motivating workloads (image/sequence classification on a
//! CGRA) use datasets we do not ship; these generators produce the same
//! *shape* of problem — low-dimensional multi-class classification with
//! controllable separability — deterministically from a seed, so every
//! experiment is reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled dataset: `features[i]` belongs to class `labels[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature vectors (all the same dimension).
    pub features: Vec<Vec<f64>>,
    /// Class labels in `0..classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `true` if the dataset holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimension.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.features.first().expect("non-empty dataset").len()
    }

    /// Splits into (train, test) at `train_fraction` (samples are already
    /// shuffled by the generators).
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `(0, 1)`.
    #[must_use]
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "fraction must be in (0, 1)"
        );
        let cut = ((self.len() as f64) * train_fraction) as usize;
        let take = |range: std::ops::Range<usize>| Dataset {
            features: self.features[range.clone()].to_vec(),
            labels: self.labels[range].to_vec(),
            classes: self.classes,
        };
        (take(0..cut), take(cut..self.len()))
    }
}

/// Gaussian blobs: `classes` clusters on a circle of radius `spread`,
/// unit-variance noise. Linearly separable for large `spread`.
#[must_use]
pub fn gaussian_blobs(samples: usize, classes: usize, spread: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut features = Vec::with_capacity(samples);
    let mut labels = Vec::with_capacity(samples);
    for _ in 0..samples {
        let class = rng.gen_range(0..classes);
        let angle = std::f64::consts::TAU * class as f64 / classes as f64;
        let cx = spread * angle.cos();
        let cy = spread * angle.sin();
        features.push(vec![cx + gauss(&mut rng), cy + gauss(&mut rng)]);
        labels.push(class);
    }
    Dataset {
        features,
        labels,
        classes,
    }
}

/// The classic two-spirals problem — not linearly separable, a real test
/// of the hidden-layer non-linearity.
#[must_use]
pub fn two_spirals(samples: usize, noise: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut features = Vec::with_capacity(samples);
    let mut labels = Vec::with_capacity(samples);
    for _ in 0..samples {
        let class = rng.gen_range(0..2usize);
        let t = rng.gen_range(0.25..1.0) * 3.0 * std::f64::consts::PI;
        let sign = if class == 0 { 1.0 } else { -1.0 };
        let r = t / (3.0 * std::f64::consts::PI) * 4.0;
        features.push(vec![
            sign * r * t.cos() + noise * gauss(&mut rng),
            sign * r * t.sin() + noise * gauss(&mut rng),
        ]);
        labels.push(class);
    }
    Dataset {
        features,
        labels,
        classes: 2,
    }
}

/// XOR clouds: four Gaussian clusters labelled by quadrant parity.
#[must_use]
pub fn xor_clouds(samples: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut features = Vec::with_capacity(samples);
    let mut labels = Vec::with_capacity(samples);
    for _ in 0..samples {
        let qx = i32::from(rng.gen::<bool>()) * 2 - 1;
        let qy = i32::from(rng.gen::<bool>()) * 2 - 1;
        features.push(vec![
            f64::from(qx) * 2.0 + 0.6 * gauss(&mut rng),
            f64::from(qy) * 2.0 + 0.6 * gauss(&mut rng),
        ]);
        labels.push(usize::from(qx != qy));
    }
    Dataset {
        features,
        labels,
        classes: 2,
    }
}

/// Standard-normal sample via Box–Muller (keeps the dependency surface to
/// `rand`'s core).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(gaussian_blobs(50, 3, 4.0, 7), gaussian_blobs(50, 3, 4.0, 7));
        assert_eq!(two_spirals(50, 0.1, 7), two_spirals(50, 0.1, 7));
        assert_ne!(gaussian_blobs(50, 3, 4.0, 7), gaussian_blobs(50, 3, 4.0, 8));
    }

    #[test]
    fn labels_are_in_range() {
        let d = gaussian_blobs(200, 4, 3.0, 1);
        assert!(d.labels.iter().all(|&l| l < 4));
        assert_eq!(d.dim(), 2);
        assert_eq!(d.len(), 200);
    }

    #[test]
    fn split_preserves_everything() {
        let d = two_spirals(100, 0.1, 3);
        let (train, test) = d.split(0.8);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        assert_eq!(train.classes, 2);
    }

    #[test]
    fn blobs_are_roughly_centred_on_the_circle() {
        let d = gaussian_blobs(2000, 2, 5.0, 11);
        // Class 0 centre is (5, 0): its mean x must be clearly positive.
        let (mut sum_x, mut count) = (0.0, 0);
        for (f, &l) in d.features.iter().zip(&d.labels) {
            if l == 0 {
                sum_x += f[0];
                count += 1;
            }
        }
        assert!(sum_x / f64::from(count) > 3.0);
    }

    #[test]
    fn gauss_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gauss(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0, 1)")]
    fn bad_split_panics() {
        let _ = gaussian_blobs(10, 2, 3.0, 1).split(1.5);
    }
}
