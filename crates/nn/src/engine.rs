//! Engine-backed [`Nonlinearity`]: run layer activations on a shared
//! [`nacu_engine`] pool instead of a private sequential unit.
//!
//! This is the serving-path adapter the ROADMAP's fabric view needs: many
//! network evaluations (possibly on many client threads) funnel their
//! σ/tanh/exp/softmax work through one bounded queue onto a pool of NACU
//! shards, where same-function requests coalesce into pipelined hardware
//! batches. Results are bit-identical to [`crate::activation::NacuActivation`]
//! with the same [`nacu::NacuConfig`], because every pool worker builds
//! the identical unit.
//!
//! The [`Nonlinearity`] trait is infallible, so this adapter absorbs
//! transient [`SubmitError::Busy`] backpressure by yielding and retrying —
//! an activation inside a forward pass cannot be load-shed. Clients that
//! *can* shed load should submit [`nacu_engine::Request`]s directly.

use std::sync::Arc;
use std::time::Instant;

use nacu::Function;
use nacu_engine::{EngineHandle, FaultEvent, Request, SubmitError, WaitError};
use nacu_fixed::{Fx, QFormat};
use nacu_obs::{Obs, TraceKind};

use crate::activation::Nonlinearity;

/// A forward pass failed because the serving pool could not produce a
/// trustworthy answer — the fault-aware alternative to
/// [`EngineActivation::map_batch`]'s panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActivationError {
    /// A hardware detector fired on every serving attempt; the layer's
    /// outputs would have been corrupt and were never produced.
    FaultDetected {
        /// The detector event from the final attempt.
        event: FaultEvent,
        /// Serving attempts made.
        attempts: u32,
    },
    /// Every NACU unit in the pool is quarantined.
    NoHealthyWorkers,
    /// The engine shut down (or refused the request) mid-forward-pass.
    EngineUnavailable,
}

impl std::fmt::Display for ActivationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::FaultDetected { event, attempts } => {
                write!(
                    f,
                    "activation hit a detected fault ({attempts} attempts): {event}"
                )
            }
            Self::NoHealthyWorkers => write!(f, "no healthy NACU unit left in the pool"),
            Self::EngineUnavailable => write!(f, "engine unavailable mid-forward-pass"),
        }
    }
}

impl std::error::Error for ActivationError {}

/// A [`Nonlinearity`] that evaluates on an engine pool.
#[derive(Debug, Clone)]
pub struct EngineActivation {
    handle: EngineHandle,
    /// When attached (see [`EngineActivation::with_obs`]), every batch
    /// activation emits a [`TraceKind::LayerForward`] span.
    obs: Option<Arc<Obs>>,
}

impl EngineActivation {
    /// Wraps a submission handle (see [`nacu_engine::Engine::handle`]).
    #[must_use]
    pub fn new(handle: EngineHandle) -> Self {
        Self { handle, obs: None }
    }

    /// Attaches an observability surface — normally the engine's own
    /// ([`nacu_engine::Engine::obs`]) so layer spans land in the same
    /// trace ring as the queue/batch events they caused, letting a
    /// drained trace correlate "layer 2's σ activation" with the fused
    /// batches that served it.
    #[must_use]
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The underlying submission handle.
    #[must_use]
    pub fn handle(&self) -> &EngineHandle {
        &self.handle
    }

    /// Evaluates `function` over a whole operand batch on the pool,
    /// retrying while the queue is full.
    ///
    /// # Panics
    ///
    /// Panics if the engine shuts down mid-computation or rejects the
    /// request as invalid — both are programming errors for an adapter
    /// that outlives its layers.
    #[must_use]
    pub fn map_batch(&self, function: Function, operands: &[Fx]) -> Vec<Fx> {
        match self.try_map_batch(function, operands) {
            Ok(outputs) => outputs,
            Err(e) => panic!("engine failed mid-forward-pass: {e}"),
        }
    }

    /// Fault-aware [`EngineActivation::map_batch`]: transient backpressure
    /// (`Busy`, lapsed deadlines) is still absorbed by retrying, but
    /// *reliability* failures — a detected hardware fault that survived
    /// the engine's own retries, or a fully quarantined pool — surface as
    /// a typed [`ActivationError`] so the model runner can fail the
    /// inference (or fail over) instead of crashing.
    ///
    /// # Errors
    ///
    /// [`ActivationError::FaultDetected`] /
    /// [`ActivationError::NoHealthyWorkers`] when the pool cannot produce
    /// a trustworthy answer; [`ActivationError::EngineUnavailable`] when
    /// it is gone entirely.
    pub fn try_map_batch(
        &self,
        function: Function,
        operands: &[Fx],
    ) -> Result<Vec<Fx>, ActivationError> {
        let started = Instant::now();
        loop {
            match self
                .handle
                .submit(Request::new(function, operands.to_vec()))
            {
                Ok(ticket) => {
                    let req = ticket.request_id();
                    match ticket.wait() {
                        Ok(response) => {
                            if let Some(obs) = &self.obs {
                                let wall_ns =
                                    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                                obs.record_trace(TraceKind::LayerForward {
                                    req,
                                    function,
                                    ops: operands.len().min(u32::MAX as usize) as u32,
                                    wall_ns,
                                });
                            }
                            return Ok(response.outputs);
                        }
                        Err(WaitError::DeadlineExpired) => {
                            // The engine's default deadline lapsed under load;
                            // an activation cannot be dropped, so resubmit.
                            continue;
                        }
                        Err(WaitError::FaultDetected { event, attempts }) => {
                            return Err(ActivationError::FaultDetected { event, attempts });
                        }
                        Err(WaitError::NoHealthyWorkers) => {
                            return Err(ActivationError::NoHealthyWorkers);
                        }
                        Err(WaitError::EngineShutDown | WaitError::Timeout) => {
                            return Err(ActivationError::EngineUnavailable);
                        }
                    }
                }
                Err(SubmitError::Busy { .. }) => std::thread::yield_now(),
                Err(SubmitError::ShuttingDown) => {
                    return Err(ActivationError::EngineUnavailable);
                }
                Err(e @ SubmitError::Invalid(_)) => {
                    panic!("engine rejected a layer activation: {e}")
                }
            }
        }
    }
}

impl Nonlinearity for EngineActivation {
    fn format(&self) -> QFormat {
        self.handle.format()
    }

    fn sigmoid(&self, x: Fx) -> Fx {
        self.map_batch(Function::Sigmoid, &[x])[0]
    }

    fn tanh(&self, x: Fx) -> Fx {
        self.map_batch(Function::Tanh, &[x])[0]
    }

    fn exp_neg(&self, x: Fx) -> Fx {
        self.map_batch(Function::Exp, &[x])[0]
    }

    fn softmax(&self, inputs: &[Fx]) -> Vec<Fx> {
        self.map_batch(Function::Softmax, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::NacuActivation;
    use crate::data;
    use crate::train;
    use nacu::NacuConfig;
    use nacu_engine::{Engine, EngineConfig};
    use nacu_fixed::Rounding;

    fn pool(workers: usize) -> Engine {
        Engine::new(EngineConfig::new(NacuConfig::paper_16bit()).with_workers(workers))
            .expect("paper config")
    }

    #[test]
    fn engine_activation_is_bit_identical_to_sequential() {
        let engine = pool(3);
        let on_pool = EngineActivation::new(engine.handle());
        let sequential = NacuActivation::paper_16bit();
        let fmt = on_pool.format();
        for v in [-6.3, -1.5, -0.1, 0.0, 0.7, 2.0, 9.9] {
            let x = Fx::from_f64(v, fmt, Rounding::Nearest);
            assert_eq!(on_pool.sigmoid(x), sequential.sigmoid(x), "sigmoid({v})");
            assert_eq!(on_pool.tanh(x), sequential.tanh(x), "tanh({v})");
            assert_eq!(on_pool.exp_neg(x), sequential.exp_neg(x), "exp({v})");
        }
        let xs: Vec<Fx> = [-0.4, 1.2, 0.3, -2.0]
            .iter()
            .map(|&v| Fx::from_f64(v, fmt, Rounding::Nearest))
            .collect();
        assert_eq!(on_pool.softmax(&xs), sequential.softmax(&xs));
    }

    #[test]
    fn layer_forward_spans_land_in_the_engines_trace_ring() {
        let engine = pool(1);
        let obs = engine.obs();
        // Drop the submit/batch noise so far (there is none yet, but be
        // explicit about what this test asserts on).
        let _ = obs.drain_trace(usize::MAX);
        let nl = EngineActivation::new(engine.handle()).with_obs(engine.obs());
        let fmt = nl.format();
        let xs: Vec<Fx> = (0..5)
            .map(|i| Fx::from_f64(f64::from(i) * 0.3 - 0.6, fmt, Rounding::Nearest))
            .collect();
        let _ = nl.map_batch(Function::Tanh, &xs);
        let spans: Vec<_> = obs
            .drain_trace(usize::MAX)
            .into_iter()
            .filter(|e| matches!(e.kind, nacu_obs::TraceKind::LayerForward { .. }))
            .collect();
        assert_eq!(spans.len(), 1);
        match spans[0].kind {
            nacu_obs::TraceKind::LayerForward {
                req, function, ops, ..
            } => {
                assert!(req >= 1, "layer span carries the engine request id");
                assert_eq!(function, Function::Tanh);
                assert_eq!(ops, 5);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn mlp_forward_on_the_engine_matches_sequential() {
        let engine = pool(2);
        let on_pool = EngineActivation::new(engine.handle());
        let sequential = NacuActivation::paper_16bit();
        let fmt = on_pool.format();
        let dataset = data::gaussian_blobs(24, 3, 5.0, 7);
        let net = train::train_mlp(&dataset, 8, 10, 0.05, 1).quantize(fmt);
        for features in &dataset.features {
            assert_eq!(
                net.classify(features, &on_pool),
                net.classify(features, &sequential)
            );
        }
    }

    #[test]
    fn broken_pool_surfaces_a_typed_activation_error() {
        use nacu_engine::{Fault, FaultPlan, FaultTolerance, InjectionSite};
        // One worker whose LUT entry 0 is corrupt: the first σ(0) request
        // trips parity, the pool quarantines to zero healthy units, and
        // the fault-aware path reports it instead of panicking.
        let engine = Engine::new(
            EngineConfig::new(NacuConfig::paper_16bit())
                .with_workers(1)
                .with_fault_tolerance(FaultTolerance {
                    plans: vec![FaultPlan::single(Fault::stuck_lut(
                        InjectionSite::LutBias,
                        0,
                        13,
                        true,
                    ))],
                    ..FaultTolerance::default()
                }),
        )
        .expect("paper config");
        let nl = EngineActivation::new(engine.handle());
        let x = Fx::from_f64(0.0, nl.format(), Rounding::Nearest);
        let err = nl
            .try_map_batch(Function::Sigmoid, &[x])
            .expect_err("no healthy unit can serve");
        assert!(matches!(
            err,
            ActivationError::NoHealthyWorkers | ActivationError::FaultDetected { .. }
        ));
    }

    #[test]
    fn concurrent_clients_share_one_pool() {
        let engine = pool(4);
        let sequential = NacuActivation::paper_16bit();
        let fmt = sequential.format();
        let expected: Vec<Fx> = (0..32)
            .map(|i| {
                sequential.sigmoid(Fx::from_f64(
                    f64::from(i) * 0.2 - 3.0,
                    fmt,
                    Rounding::Nearest,
                ))
            })
            .collect();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let nl = EngineActivation::new(engine.handle());
                let expected = expected.clone();
                std::thread::spawn(move || {
                    for (i, &want) in expected.iter().enumerate() {
                        let x = Fx::from_f64(i as f64 * 0.2 - 3.0, nl.format(), Rounding::Nearest);
                        assert_eq!(nl.sigmoid(x), want);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("client thread");
        }
        assert_eq!(engine.metrics().sigmoid_ops, 8 * 32);
    }
}
