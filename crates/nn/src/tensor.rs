//! Minimal fixed-point matrix type.
//!
//! Dense layers and LSTM gates reduce to matrix–vector products; this type
//! runs them through [`nacu::datapath::MacAccumulator`] so every multiply
//! and accumulate has exactly the datapath's rounding and saturation
//! behaviour.

use nacu::datapath::MacAccumulator;
use nacu_fixed::{Fx, QFormat, Rounding};

/// A row-major fixed-point matrix (all elements share one format).
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Fx>,
    format: QFormat,
}

impl Matrix {
    /// A zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize, format: QFormat) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![Fx::zero(format); rows * cols],
            format,
        }
    }

    /// Quantises an f64 matrix given in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * cols` or a dimension is zero.
    #[must_use]
    pub fn from_f64(rows: usize, cols: usize, values: &[f64], format: QFormat) -> Self {
        assert_eq!(values.len(), rows * cols, "shape mismatch");
        let mut m = Self::zeros(rows, cols, format);
        for (slot, &v) in m.data.iter_mut().zip(values) {
            *slot = Fx::from_f64(v, format, Rounding::Nearest);
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element format.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Fx {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: Fx) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        assert_eq!(value.format(), self.format, "format mismatch");
        self.data[row * self.cols + col] = value;
    }

    /// Matrix–vector product through the MAC accumulator: one accumulator
    /// per output row, one MAC step per element — NACU's convolution mode.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or any element format differs.
    #[must_use]
    pub fn matvec(&self, x: &[Fx]) -> Vec<Fx> {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        (0..self.rows)
            .map(|r| {
                let mut mac = MacAccumulator::new(self.format);
                for (c, &xi) in x.iter().enumerate() {
                    mac.step(self.get(r, c), xi);
                }
                mac.value()
            })
            .collect()
    }

    /// Row-major view of the raw elements.
    #[must_use]
    pub fn as_slice(&self) -> &[Fx] {
        &self.data
    }
}

/// Quantises an f64 vector.
#[must_use]
pub fn quantize_vec(values: &[f64], format: QFormat) -> Vec<Fx> {
    values
        .iter()
        .map(|&v| Fx::from_f64(v, format, Rounding::Nearest))
        .collect()
}

/// Converts a fixed-point vector back to f64 for reporting.
#[must_use]
pub fn to_f64_vec(values: &[Fx]) -> Vec<f64> {
    values.iter().map(Fx::to_f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> QFormat {
        QFormat::new(4, 11).unwrap()
    }

    #[test]
    fn matvec_matches_f64_for_exact_values() {
        let m = Matrix::from_f64(2, 3, &[0.5, 1.0, -0.25, 2.0, 0.0, 1.5], q());
        let x = quantize_vec(&[1.0, 2.0, 4.0], q());
        let y = m.matvec(&x);
        assert_eq!(y[0].to_f64(), 0.5 + 2.0 - 1.0);
        assert_eq!(y[1].to_f64(), 2.0 + 0.0 + 6.0);
    }

    #[test]
    fn matvec_saturates_like_the_mac() {
        let m = Matrix::from_f64(1, 2, &[15.0, 15.0], q());
        let x = quantize_vec(&[1.0, 1.0], q());
        let y = m.matvec(&x);
        assert_eq!(y[0].raw(), q().max_raw());
    }

    #[test]
    fn get_set_round_trip() {
        let mut m = Matrix::zeros(2, 2, q());
        let v = Fx::from_f64(1.25, q(), Rounding::Nearest);
        m.set(1, 0, v);
        assert_eq!(m.get(1, 0), v);
        assert!(m.get(0, 0).is_zero());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_shape_panics() {
        let _ = Matrix::from_f64(2, 2, &[1.0, 2.0, 3.0], q());
    }

    #[test]
    #[should_panic(expected = "vector length mismatch")]
    fn wrong_vector_length_panics() {
        let m = Matrix::zeros(2, 3, q());
        let x = quantize_vec(&[1.0], q());
        let _ = m.matvec(&x);
    }

    #[test]
    fn quantize_round_trips() {
        let vals = [0.5, -1.25, 3.0];
        let back = to_f64_vec(&quantize_vec(&vals, q()));
        assert_eq!(back, vals);
    }
}
