//! A fixed-point multi-layer perceptron with a softmax classification
//! head — the "last layer" workload §IV.B builds the exp/softmax path for.

use nacu_fixed::{Fx, QFormat};

use crate::activation::Nonlinearity;
use crate::data::Dataset;
use crate::dense::Dense;
use crate::tensor::quantize_vec;

/// A feed-forward classifier: dense layers, then softmax over the logits.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    format: QFormat,
}

impl Mlp {
    /// Assembles an MLP from pre-built layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive widths do not chain.
    #[must_use]
    pub fn new(layers: Vec<Dense>, format: QFormat) -> Self {
        assert!(!layers.is_empty(), "an MLP needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].outputs(),
                pair[1].inputs(),
                "layer widths must chain"
            );
        }
        Self { layers, format }
    }

    /// Input dimension.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.layers[0].inputs()
    }

    /// Number of classes (last layer width).
    #[must_use]
    pub fn classes(&self) -> usize {
        self.layers.last().expect("non-empty").outputs()
    }

    /// Forward pass returning softmax probabilities.
    #[must_use]
    pub fn forward(&self, x: &[Fx], nl: &dyn Nonlinearity) -> Vec<Fx> {
        let mut h = x.to_vec();
        for layer in &self.layers {
            h = layer.forward(&h, nl);
        }
        nl.softmax(&h)
    }

    /// Predicted class for an f64 feature vector.
    #[must_use]
    pub fn classify(&self, features: &[f64], nl: &dyn Nonlinearity) -> usize {
        let x = quantize_vec(features, self.format);
        let probs = self.forward(&x, nl);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("same format"))
            .map(|(i, _)| i)
            .expect("non-empty class vector")
    }

    /// Classification accuracy over a dataset.
    #[must_use]
    pub fn accuracy(&self, data: &Dataset, nl: &dyn Nonlinearity) -> f64 {
        let correct = data
            .features
            .iter()
            .zip(&data.labels)
            .filter(|(f, &l)| self.classify(f, nl) == l)
            .count();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ReferenceActivation;
    use crate::dense::LayerActivation;

    fn q() -> QFormat {
        QFormat::new(4, 11).unwrap()
    }

    #[test]
    fn hand_built_network_classifies_by_sign() {
        // One layer mapping x -> logits [x, -x]: class 0 iff x > 0.
        let layer = Dense::from_f64(
            2,
            1,
            &[4.0, -4.0],
            &[0.0, 0.0],
            LayerActivation::Identity,
            q(),
        );
        let mlp = Mlp::new(vec![layer], q());
        let nl = ReferenceActivation::new(q());
        assert_eq!(mlp.classify(&[2.0], &nl), 0);
        assert_eq!(mlp.classify(&[-2.0], &nl), 1);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let layer = Dense::from_f64(
            3,
            2,
            &[1.0, 0.0, 0.0, 1.0, -1.0, 0.5],
            &[0.0; 3],
            LayerActivation::Identity,
            q(),
        );
        let mlp = Mlp::new(vec![layer], q());
        let nl = ReferenceActivation::new(q());
        let probs = mlp.forward(&quantize_vec(&[0.7, -0.2], q()), &nl);
        let sum: f64 = probs.iter().map(Fx::to_f64).sum();
        assert!((sum - 1.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "layer widths must chain")]
    fn mismatched_layers_panic() {
        let a = Dense::from_f64(3, 2, &[0.0; 6], &[0.0; 3], LayerActivation::Tanh, q());
        let b = Dense::from_f64(2, 4, &[0.0; 8], &[0.0; 2], LayerActivation::Identity, q());
        let _ = Mlp::new(vec![a, b], q());
    }
}
