//! A fully connected fixed-point layer.

use nacu_fixed::{Fx, QFormat};

use crate::activation::Nonlinearity;
use crate::tensor::Matrix;

/// Which non-linearity a layer applies after its affine transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayerActivation {
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// No non-linearity (logit outputs feeding a softmax head).
    Identity,
}

/// A dense layer: `y = act(W·x + b)` in fixed point.
///
/// The matrix–vector product runs through the MAC accumulator, the bias is
/// a saturating add, and the activation is whatever [`Nonlinearity`] the
/// forward pass is given — so one set of quantised weights can be
/// evaluated under NACU, the reference, or any comparator.
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Matrix,
    bias: Vec<Fx>,
    activation: LayerActivation,
}

impl Dense {
    /// Builds a layer from f64 weights (`outputs × inputs`, row-major) and
    /// biases, quantising into `format`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != outputs * inputs` or
    /// `bias.len() != outputs`.
    #[must_use]
    pub fn from_f64(
        outputs: usize,
        inputs: usize,
        weights: &[f64],
        bias: &[f64],
        activation: LayerActivation,
        format: QFormat,
    ) -> Self {
        assert_eq!(bias.len(), outputs, "bias length mismatch");
        Self {
            weights: Matrix::from_f64(outputs, inputs, weights, format),
            bias: crate::tensor::quantize_vec(bias, format),
            activation,
        }
    }

    /// Input width.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.weights.cols()
    }

    /// Output width.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.weights.rows()
    }

    /// The layer's activation kind.
    #[must_use]
    pub fn activation(&self) -> LayerActivation {
        self.activation
    }

    /// Forward pass with the supplied non-linearity.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from [`Dense::inputs`] or formats
    /// mismatch.
    #[must_use]
    pub fn forward(&self, x: &[Fx], nl: &dyn Nonlinearity) -> Vec<Fx> {
        let pre = self.weights.matvec(x);
        pre.into_iter()
            .zip(&self.bias)
            .map(|(p, &b)| {
                let z = p + b;
                match self.activation {
                    LayerActivation::Sigmoid => nl.sigmoid(z),
                    LayerActivation::Tanh => nl.tanh(z),
                    LayerActivation::Identity => z,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ReferenceActivation;
    use crate::tensor::quantize_vec;
    use nacu_fixed::Rounding;

    fn q() -> QFormat {
        QFormat::new(4, 11).unwrap()
    }

    #[test]
    fn identity_layer_is_affine() {
        let layer = Dense::from_f64(
            2,
            2,
            &[1.0, 0.0, 0.0, 1.0],
            &[0.5, -0.5],
            LayerActivation::Identity,
            q(),
        );
        let nl = ReferenceActivation::new(q());
        let y = layer.forward(&quantize_vec(&[1.0, 2.0], q()), &nl);
        assert_eq!(y[0].to_f64(), 1.5);
        assert_eq!(y[1].to_f64(), 1.5);
    }

    #[test]
    fn sigmoid_layer_squashes() {
        let layer = Dense::from_f64(1, 1, &[10.0], &[0.0], LayerActivation::Sigmoid, q());
        let nl = ReferenceActivation::new(q());
        let y = layer.forward(&[Fx::from_f64(1.0, q(), Rounding::Nearest)], &nl);
        assert!((y[0].to_f64() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn tanh_layer_is_odd() {
        let layer = Dense::from_f64(1, 1, &[1.0], &[0.0], LayerActivation::Tanh, q());
        let nl = ReferenceActivation::new(q());
        let p = layer.forward(&[Fx::from_f64(0.8, q(), Rounding::Nearest)], &nl)[0].to_f64();
        let n = layer.forward(&[Fx::from_f64(-0.8, q(), Rounding::Nearest)], &nl)[0].to_f64();
        assert!((p + n).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "bias length mismatch")]
    fn bias_shape_is_checked() {
        let _ = Dense::from_f64(2, 2, &[0.0; 4], &[0.0], LayerActivation::Identity, q());
    }
}
