//! A small f64 SGD trainer.
//!
//! Quantised-inference experiments are only meaningful on *trained*
//! weights — random weights would hide activation-approximation error in
//! noise. This module trains a one-hidden-layer MLP (tanh hidden, softmax
//! cross-entropy head) in f64, then quantises it into the fixed-point
//! [`Mlp`] for the NACU-vs-reference comparisons.

use nacu_fixed::QFormat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::Dataset;
use crate::dense::{Dense, LayerActivation};
use crate::mlp::Mlp;

/// A trained one-hidden-layer network in f64.
#[derive(Debug, Clone)]
pub struct TrainedMlp {
    inputs: usize,
    hidden: usize,
    classes: usize,
    /// Hidden weights, `hidden × inputs` row-major.
    w1: Vec<f64>,
    b1: Vec<f64>,
    /// Output weights, `classes × hidden` row-major.
    w2: Vec<f64>,
    b2: Vec<f64>,
}

impl TrainedMlp {
    /// Forward pass in f64, returning (hidden activations, logits).
    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let h: Vec<f64> = (0..self.hidden)
            .map(|j| {
                let z: f64 = (0..self.inputs)
                    .map(|i| self.w1[j * self.inputs + i] * x[i])
                    .sum::<f64>()
                    + self.b1[j];
                z.tanh()
            })
            .collect();
        let logits: Vec<f64> = (0..self.classes)
            .map(|k| {
                (0..self.hidden)
                    .map(|j| self.w2[k * self.hidden + j] * h[j])
                    .sum::<f64>()
                    + self.b2[k]
            })
            .collect();
        (h, logits)
    }

    /// f64 classification accuracy (the ceiling quantised inference is
    /// compared against).
    #[must_use]
    pub fn accuracy_f64(&self, data: &Dataset) -> f64 {
        let correct = data
            .features
            .iter()
            .zip(&data.labels)
            .filter(|(x, &l)| {
                let (_, logits) = self.forward(x);
                argmax(&logits) == l
            })
            .count();
        correct as f64 / data.len() as f64
    }

    /// Raw trained parameters `(w1, b1, w2, b2)`: hidden weights
    /// (`hidden × inputs`, row-major), hidden biases, output weights
    /// (`classes × hidden`), output biases — for mapping the network onto
    /// other substrates (e.g. the `nacu-cgra` fabric).
    #[must_use]
    pub fn parameters(&self) -> (&[f64], &[f64], &[f64], &[f64]) {
        (&self.w1, &self.b1, &self.w2, &self.b2)
    }

    /// Quantises the trained weights into a fixed-point [`Mlp`] with a
    /// tanh hidden layer.
    #[must_use]
    pub fn quantize(&self, format: QFormat) -> Mlp {
        let hidden = Dense::from_f64(
            self.hidden,
            self.inputs,
            &self.w1,
            &self.b1,
            LayerActivation::Tanh,
            format,
        );
        let head = Dense::from_f64(
            self.classes,
            self.hidden,
            &self.w2,
            &self.b2,
            LayerActivation::Identity,
            format,
        );
        Mlp::new(vec![hidden, head], format)
    }
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty")
}

/// Trains a one-hidden-layer MLP with plain SGD on softmax cross-entropy.
///
/// Deterministic for a given `(data, hidden, epochs, lr, seed)` tuple.
///
/// # Panics
///
/// Panics on an empty dataset, a zero hidden width, or a non-positive
/// learning rate.
#[must_use]
#[allow(clippy::needless_range_loop)] // backprop index algebra reads clearest indexed
pub fn train_mlp(data: &Dataset, hidden: usize, epochs: usize, lr: f64, seed: u64) -> TrainedMlp {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    assert!(hidden > 0, "hidden width must be positive");
    assert!(lr > 0.0, "learning rate must be positive");
    let inputs = data.dim();
    let classes = data.classes;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut init = |n: usize, fan_in: usize| -> Vec<f64> {
        let scale = (1.0 / fan_in as f64).sqrt();
        (0..n).map(|_| rng.gen_range(-scale..scale)).collect()
    };
    let mut net = TrainedMlp {
        inputs,
        hidden,
        classes,
        w1: init(hidden * inputs, inputs),
        b1: vec![0.0; hidden],
        w2: init(classes * hidden, hidden),
        b2: vec![0.0; classes],
    };
    for _ in 0..epochs {
        for (x, &label) in data.features.iter().zip(&data.labels) {
            let (h, logits) = net.forward(x);
            // Softmax + cross-entropy gradient: p − one_hot.
            let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = logits.iter().map(|z| (z - max).exp()).collect();
            let denom: f64 = exps.iter().sum();
            let grad_logits: Vec<f64> = exps
                .iter()
                .enumerate()
                .map(|(k, e)| e / denom - f64::from(u8::from(k == label)))
                .collect();
            // Output layer update + hidden gradient.
            let mut grad_h = vec![0.0; hidden];
            for k in 0..classes {
                for j in 0..hidden {
                    grad_h[j] += grad_logits[k] * net.w2[k * hidden + j];
                    net.w2[k * hidden + j] -= lr * grad_logits[k] * h[j];
                }
                net.b2[k] -= lr * grad_logits[k];
            }
            // Hidden layer update through the tanh derivative.
            for j in 0..hidden {
                let dz = grad_h[j] * (1.0 - h[j] * h[j]);
                for i in 0..inputs {
                    net.w1[j * inputs + i] -= lr * dz * x[i];
                }
                net.b1[j] -= lr * dz;
            }
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn training_learns_separable_blobs() {
        let d = data::gaussian_blobs(400, 3, 5.0, 42);
        let (train, test) = d.split(0.8);
        let net = train_mlp(&train, 8, 40, 0.05, 1);
        let acc = net.accuracy_f64(&test);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn training_cracks_xor() {
        let d = data::xor_clouds(400, 42);
        let (train, test) = d.split(0.8);
        let net = train_mlp(&train, 12, 150, 0.05, 2);
        let acc = net.accuracy_f64(&test);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let d = data::gaussian_blobs(100, 2, 4.0, 5);
        let a = train_mlp(&d, 4, 5, 0.05, 9);
        let b = train_mlp(&d, 4, 5, 0.05, 9);
        assert_eq!(a.w1, b.w1);
        assert_eq!(a.w2, b.w2);
    }

    #[test]
    fn quantised_network_matches_f64_on_easy_data() {
        let d = data::gaussian_blobs(300, 3, 5.0, 7);
        let (train, test) = d.split(0.8);
        let net = train_mlp(&train, 8, 40, 0.05, 3);
        let fmt = QFormat::new(4, 11).unwrap();
        let fixed = net.quantize(fmt);
        let nl = crate::activation::ReferenceActivation::new(fmt);
        let acc_fixed = fixed.accuracy(&test, &nl);
        let acc_f64 = net.accuracy_f64(&test);
        assert!(
            acc_fixed >= acc_f64 - 0.05,
            "fixed {acc_fixed} vs f64 {acc_f64}"
        );
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let d = Dataset {
            features: vec![],
            labels: vec![],
            classes: 2,
        };
        let _ = train_mlp(&d, 4, 1, 0.1, 0);
    }
}
