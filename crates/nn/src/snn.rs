//! An exponential integrate-and-fire neuron on the NACU exp path.
//!
//! §I motivates the exponential with "biologically plausible
//! integrate-and-fire neurons using differential equations … whose
//! numerical solutions often involve these non-linearities" — the
//! adaptive-exponential neuron family of \[12\]/\[15\]. The membrane equation
//!
//! ```text
//! τ·dV/dt = −(V − E_L) + Δ_T·e^{(V − V_T)/Δ_T} + R·I
//! ```
//!
//! contains an exponential whose argument turns positive near threshold.
//! We renormalise it the same way softmax does (§IV.B): with
//! `a′ = (V − V_peak)/Δ_T ≤ 0` the term becomes
//! `Δ_T·e^{a_max}·e^{a′}` with `a_max = (V_peak − V_T)/Δ_T` a constant —
//! so the datapath only ever sees the normalised non-positive operand, and
//! the Eq. 16 error bound applies.

use nacu_fixed::{Fx, QFormat, Rounding};

use crate::activation::Nonlinearity;

/// Physical parameters of the exponential integrate-and-fire neuron, in
/// normalised units that fit a `Q4.11` membrane variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdexParams {
    /// Membrane time constant.
    pub tau: f64,
    /// Leak reversal (resting) potential.
    pub e_l: f64,
    /// Exponential threshold.
    pub v_t: f64,
    /// Threshold sharpness `Δ_T`.
    pub delta_t: f64,
    /// Input resistance.
    pub r: f64,
    /// Spike-detection ceiling.
    pub v_peak: f64,
    /// Post-spike reset potential.
    pub v_reset: f64,
}

impl Default for AdexParams {
    /// A well-behaved normalised parameter set (potentials in `[−8, 8]`).
    fn default() -> Self {
        Self {
            tau: 10.0,
            e_l: -2.0,
            v_t: 1.0,
            delta_t: 2.0,
            r: 1.0,
            v_peak: 6.0,
            v_reset: -3.0,
        }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SpikeTrain {
    /// Time-step indices at which the neuron fired.
    pub spikes: Vec<usize>,
    /// Membrane trace (f64 view of the fixed-point state), one entry per
    /// step.
    pub trace: Vec<f64>,
}

impl SpikeTrain {
    /// Number of spikes.
    #[must_use]
    pub fn count(&self) -> usize {
        self.spikes.len()
    }
}

/// A fixed-point exponential integrate-and-fire neuron.
#[derive(Debug, Clone)]
pub struct AdexNeuron {
    params: AdexParams,
    format: QFormat,
    /// `dt/τ` quantised.
    k_leak: Fx,
    /// `dt/τ · Δ_T · e^{a_max}` quantised (the folded exp prefactor).
    k_exp: Fx,
    /// `dt/τ · R` quantised.
    k_input: Fx,
    /// `1/Δ_T` quantised (for the exp argument).
    inv_delta_t: Fx,
    e_l: Fx,
    v_peak: Fx,
    v_reset: Fx,
}

impl AdexNeuron {
    /// Builds a neuron with time step `dt` in `format`.
    ///
    /// # Panics
    ///
    /// Panics if `dt`, `tau` or `delta_t` is not positive, or if the
    /// folded exp prefactor `dt/τ·Δ_T·e^{a_max}` does not fit the format
    /// (choose a smaller `v_peak − v_t` or a finer time step).
    #[must_use]
    pub fn new(params: AdexParams, dt: f64, format: QFormat) -> Self {
        assert!(dt > 0.0 && params.tau > 0.0 && params.delta_t > 0.0);
        let a_max = (params.v_peak - params.v_t) / params.delta_t;
        let k_exp_val = dt / params.tau * params.delta_t * a_max.exp();
        assert!(
            k_exp_val <= format.max_value(),
            "exp prefactor {k_exp_val} does not fit {format}"
        );
        let q = |v: f64| Fx::from_f64(v, format, Rounding::Nearest);
        Self {
            params,
            format,
            k_leak: q(dt / params.tau),
            k_exp: q(k_exp_val),
            k_input: q(dt / params.tau * params.r),
            inv_delta_t: q(1.0 / params.delta_t),
            e_l: q(params.e_l),
            v_peak: q(params.v_peak),
            v_reset: q(params.v_reset),
        }
    }

    /// The parameter set.
    #[must_use]
    pub fn params(&self) -> &AdexParams {
        &self.params
    }

    /// Simulates the neuron over an input-current sequence (one value per
    /// step), integrating with forward Euler in fixed point. The exp term
    /// is evaluated by `nl` on the normalised non-positive operand.
    #[must_use]
    pub fn simulate(&self, current: &[f64], nl: &dyn Nonlinearity) -> SpikeTrain {
        let mut v = self.e_l;
        let mut spikes = Vec::new();
        let mut trace = Vec::with_capacity(current.len());
        for (step, &i_in) in current.iter().enumerate() {
            // a' = (V − V_peak)/Δ_T ≤ 0 (exp operand, already normalised).
            let a_prime = (v - self.v_peak) * self.inv_delta_t;
            let exp_term = self.k_exp * nl.exp_neg(a_prime);
            let leak = self.k_leak * (self.e_l - v);
            let drive = self.k_input * Fx::from_f64(i_in, self.format, Rounding::Nearest);
            v = v + leak + exp_term + drive;
            if v >= self.v_peak {
                spikes.push(step);
                v = self.v_reset;
            }
            trace.push(v.to_f64());
        }
        SpikeTrain { spikes, trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{NacuActivation, ReferenceActivation};

    fn q() -> QFormat {
        QFormat::new(4, 11).unwrap()
    }

    fn neuron() -> AdexNeuron {
        AdexNeuron::new(AdexParams::default(), 0.5, q())
    }

    #[test]
    fn no_input_means_no_spikes() {
        let n = neuron();
        let nl = ReferenceActivation::new(q());
        let out = n.simulate(&vec![0.0; 400], &nl);
        assert_eq!(out.count(), 0);
        // The membrane settles at the subthreshold fixed point: E_L plus
        // the depolarising exp offset (≈ 0.6 for the default parameters,
        // solving V − E_L = Δ_T·e^{(V − V_T)/Δ_T}).
        let final_v = *out.trace.last().unwrap();
        assert!((final_v - (-1.41)).abs() < 0.1, "V = {final_v}");
        assert!(final_v > n.params().e_l, "exp term depolarises");
    }

    #[test]
    fn strong_input_produces_regular_spiking() {
        let n = neuron();
        let nl = ReferenceActivation::new(q());
        let out = n.simulate(&vec![6.0; 800], &nl);
        assert!(out.count() >= 3, "spikes: {}", out.count());
        // Regular spiking: inter-spike intervals agree within a few steps.
        let isis: Vec<usize> = out.spikes.windows(2).map(|w| w[1] - w[0]).collect();
        let (min, max) = (*isis.iter().min().unwrap(), *isis.iter().max().unwrap());
        assert!(max - min <= 2, "irregular ISIs: {isis:?}");
    }

    #[test]
    fn nacu_exp_reproduces_the_reference_spike_train() {
        let n = neuron();
        let golden = ReferenceActivation::new(q());
        let nacu = NacuActivation::paper_16bit();
        let current = vec![5.5; 1000];
        let a = n.simulate(&current, &golden);
        let b = n.simulate(&current, &nacu);
        // Same spike count, and each spike within a couple of steps.
        assert_eq!(a.count(), b.count(), "{:?} vs {:?}", a.spikes, b.spikes);
        for (x, y) in a.spikes.iter().zip(&b.spikes) {
            assert!((*x as i64 - *y as i64).abs() <= 3, "{x} vs {y}");
        }
    }

    #[test]
    fn firing_rate_grows_with_input_current() {
        let n = neuron();
        let nl = ReferenceActivation::new(q());
        let low = n.simulate(&vec![4.5; 1000], &nl).count();
        let high = n.simulate(&vec![7.0; 1000], &nl).count();
        assert!(high > low, "rate {low} -> {high}");
    }

    #[test]
    fn reset_follows_every_spike() {
        let n = neuron();
        let nl = ReferenceActivation::new(q());
        let out = n.simulate(&vec![6.0; 600], &nl);
        for &s in &out.spikes {
            assert!((out.trace[s] - n.params().v_reset).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_prefactor_is_rejected() {
        let params = AdexParams {
            v_peak: 14.0,
            v_t: 0.0,
            delta_t: 1.0,
            tau: 0.5,
            ..AdexParams::default()
        };
        let _ = AdexNeuron::new(params, 1.0, q());
    }
}
