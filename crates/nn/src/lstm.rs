//! A fixed-point LSTM cell.
//!
//! The LSTM is the paper's poster-child for reconfigurability: every step
//! needs **three σ and two tanh evaluations per hidden unit**, so the
//! activation unit is on the critical path. This cell runs all five
//! non-linearities through a pluggable [`Nonlinearity`].

use nacu_fixed::{Fx, QFormat};

use crate::activation::Nonlinearity;
use crate::tensor::Matrix;

/// Gate weight bundle: input (`W`), recurrent (`U`) and bias (`b`).
#[derive(Debug, Clone)]
struct Gate {
    w: Matrix,
    u: Matrix,
    b: Vec<Fx>,
}

impl Gate {
    fn pre_activation(&self, x: &[Fx], h: &[Fx]) -> Vec<Fx> {
        let wx = self.w.matvec(x);
        let uh = self.u.matvec(h);
        wx.into_iter()
            .zip(uh)
            .zip(&self.b)
            .map(|((a, b), &c)| a + b + c)
            .collect()
    }
}

/// The cell state `(h, c)` carried between steps.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden output vector.
    pub h: Vec<Fx>,
    /// Cell (memory) vector.
    pub c: Vec<Fx>,
}

impl LstmState {
    /// The zero state.
    #[must_use]
    pub fn zeros(hidden: usize, format: QFormat) -> Self {
        Self {
            h: vec![Fx::zero(format); hidden],
            c: vec![Fx::zero(format); hidden],
        }
    }
}

/// A standard LSTM cell in fixed point.
///
/// Gates: `i = σ(...)`, `f = σ(...)`, `o = σ(...)`, `g = tanh(...)`;
/// update: `c' = f∘c + i∘g`, `h' = o∘tanh(c')`.
#[derive(Debug, Clone)]
pub struct LstmCell {
    input_gate: Gate,
    forget_gate: Gate,
    output_gate: Gate,
    cell_gate: Gate,
    inputs: usize,
    hidden: usize,
    format: QFormat,
}

impl LstmCell {
    /// Builds a cell from f64 parameters. Each of the four gates takes a
    /// `hidden × inputs` input matrix, a `hidden × hidden` recurrent
    /// matrix and a `hidden` bias, concatenated in `[i, f, o, g]` order.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not have exactly the concatenated sizes.
    #[must_use]
    pub fn from_f64(
        inputs: usize,
        hidden: usize,
        w: &[f64],
        u: &[f64],
        b: &[f64],
        format: QFormat,
    ) -> Self {
        assert_eq!(w.len(), 4 * hidden * inputs, "input weight size");
        assert_eq!(u.len(), 4 * hidden * hidden, "recurrent weight size");
        assert_eq!(b.len(), 4 * hidden, "bias size");
        let gate = |k: usize| Gate {
            w: Matrix::from_f64(
                hidden,
                inputs,
                &w[k * hidden * inputs..(k + 1) * hidden * inputs],
                format,
            ),
            u: Matrix::from_f64(
                hidden,
                hidden,
                &u[k * hidden * hidden..(k + 1) * hidden * hidden],
                format,
            ),
            b: crate::tensor::quantize_vec(&b[k * hidden..(k + 1) * hidden], format),
        };
        Self {
            input_gate: gate(0),
            forget_gate: gate(1),
            output_gate: gate(2),
            cell_gate: gate(3),
            inputs,
            hidden,
            format,
        }
    }

    /// Input width.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Hidden width.
    #[must_use]
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// One time step.
    ///
    /// # Panics
    ///
    /// Panics if `x` or the state have the wrong widths or formats.
    #[must_use]
    pub fn step(&self, x: &[Fx], state: &LstmState, nl: &dyn Nonlinearity) -> LstmState {
        assert_eq!(x.len(), self.inputs, "input width");
        assert_eq!(state.h.len(), self.hidden, "state width");
        let i: Vec<Fx> = self
            .input_gate
            .pre_activation(x, &state.h)
            .into_iter()
            .map(|z| nl.sigmoid(z))
            .collect();
        let f: Vec<Fx> = self
            .forget_gate
            .pre_activation(x, &state.h)
            .into_iter()
            .map(|z| nl.sigmoid(z))
            .collect();
        let o: Vec<Fx> = self
            .output_gate
            .pre_activation(x, &state.h)
            .into_iter()
            .map(|z| nl.sigmoid(z))
            .collect();
        let g: Vec<Fx> = self
            .cell_gate
            .pre_activation(x, &state.h)
            .into_iter()
            .map(|z| nl.tanh(z))
            .collect();
        let c: Vec<Fx> = (0..self.hidden)
            .map(|j| f[j] * state.c[j] + i[j] * g[j])
            .collect();
        let h: Vec<Fx> = (0..self.hidden).map(|j| o[j] * nl.tanh(c[j])).collect();
        LstmState { h, c }
    }

    /// Runs a whole input sequence from the zero state, returning the
    /// final state.
    #[must_use]
    pub fn run(&self, sequence: &[Vec<Fx>], nl: &dyn Nonlinearity) -> LstmState {
        let mut state = LstmState::zeros(self.hidden, self.format);
        for x in sequence {
            state = self.step(x, &state, nl);
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{NacuActivation, ReferenceActivation};
    use crate::tensor::quantize_vec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn q() -> QFormat {
        QFormat::new(4, 11).unwrap()
    }

    fn random_cell(inputs: usize, hidden: usize, seed: u64) -> LstmCell {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vals =
            |n: usize| -> Vec<f64> { (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect() };
        let w = vals(4 * hidden * inputs);
        let u = vals(4 * hidden * hidden);
        let b = vals(4 * hidden);
        LstmCell::from_f64(inputs, hidden, &w, &u, &b, q())
    }

    #[test]
    fn zero_weights_keep_zero_state_at_half_gates() {
        // All-zero weights: i = f = o = σ(0) = 0.5, g = tanh(0) = 0;
        // c' = 0.5·0 + 0.5·0 = 0; h' = 0.5·tanh(0) = 0.
        let cell = LstmCell::from_f64(1, 2, &[0.0; 8], &[0.0; 16], &[0.0; 8], q());
        let nl = ReferenceActivation::new(q());
        let s = cell.step(&quantize_vec(&[1.0], q()), &LstmState::zeros(2, q()), &nl);
        assert!(s.h.iter().all(Fx::is_zero));
        assert!(s.c.iter().all(Fx::is_zero));
    }

    #[test]
    fn nacu_state_tracks_reference_state_over_a_sequence() {
        let cell = random_cell(3, 4, 11);
        let mut rng = StdRng::seed_from_u64(5);
        let seq: Vec<Vec<Fx>> = (0..12)
            .map(|_| {
                let v: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect();
                quantize_vec(&v, q())
            })
            .collect();
        let nacu = NacuActivation::paper_16bit();
        let golden = ReferenceActivation::new(q());
        let s_nacu = cell.run(&seq, &nacu);
        let s_ref = cell.run(&seq, &golden);
        for (a, b) in s_nacu.h.iter().zip(&s_ref.h) {
            assert!(
                (a.to_f64() - b.to_f64()).abs() < 0.02,
                "hidden divergence {} vs {}",
                a.to_f64(),
                b.to_f64()
            );
        }
    }

    #[test]
    fn forget_gate_saturated_open_preserves_cell_memory() {
        // Huge forget bias → f ≈ 1; zero input gate → c' ≈ c.
        let hidden = 1;
        let mut b = vec![0.0; 4];
        b[0] = -12.0; // input gate shut
        b[1] = 12.0; // forget gate open
        let cell = LstmCell::from_f64(1, hidden, &[0.0; 4], &[0.0; 4], &b, q());
        let nl = ReferenceActivation::new(q());
        let mut state = LstmState::zeros(hidden, q());
        state.c[0] = Fx::from_f64(0.75, q(), nacu_fixed::Rounding::Nearest);
        let next = cell.step(&quantize_vec(&[0.3], q()), &state, &nl);
        assert!((next.c[0].to_f64() - 0.75).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "input weight size")]
    fn wrong_weight_shape_panics() {
        let _ = LstmCell::from_f64(2, 2, &[0.0; 7], &[0.0; 16], &[0.0; 8], q());
    }
}
