//! A small f64 BPTT trainer for the LSTM workload.
//!
//! The LSTM accuracy experiments need *trained* gate weights — random
//! gates neither saturate nor gate, so they under-exercise exactly the σ
//! and tanh regions that matter. This module trains a single-cell LSTM
//! with a logistic read-out on a synthetic **memory task** (classify a
//! sequence by its *first* element, forcing the cell state to carry
//! information across every step) and hands the weights to the
//! fixed-point [`crate::lstm::LstmCell`].

use nacu_fixed::QFormat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::lstm::LstmCell;

/// A sequence-classification dataset: `sequences[i]` (each `T × inputs`)
/// has binary label `labels[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceDataset {
    /// Input sequences.
    pub sequences: Vec<Vec<Vec<f64>>>,
    /// Binary labels.
    pub labels: Vec<bool>,
}

impl SequenceDataset {
    /// Number of sequences.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// `true` if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }
}

/// The memory task: the label is the sign of the **first** element; the
/// remaining `steps − 1` elements are distractor noise.
#[must_use]
pub fn memory_task(samples: usize, steps: usize, seed: u64) -> SequenceDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sequences = Vec::with_capacity(samples);
    let mut labels = Vec::with_capacity(samples);
    for _ in 0..samples {
        let label = rng.gen::<bool>();
        let first = if label {
            rng.gen_range(0.25..1.0)
        } else {
            rng.gen_range(-1.0..-0.25)
        };
        let mut seq = vec![vec![first]];
        for _ in 1..steps {
            seq.push(vec![rng.gen_range(-1.0..1.0)]);
        }
        sequences.push(seq);
        labels.push(label);
    }
    SequenceDataset { sequences, labels }
}

/// A trained single-cell LSTM classifier in f64.
#[derive(Debug, Clone)]
pub struct TrainedLstm {
    inputs: usize,
    hidden: usize,
    /// Gate weights `[i, f, o, g]`, each `hidden × inputs` row-major.
    w: Vec<f64>,
    /// Recurrent weights, each `hidden × hidden`.
    u: Vec<f64>,
    /// Gate biases.
    b: Vec<f64>,
    /// Read-out weights (`hidden`) and bias.
    w_out: Vec<f64>,
    b_out: f64,
}

struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    o: Vec<f64>,
    g: Vec<f64>,
    c: Vec<f64>,
    tanh_c: Vec<f64>,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl TrainedLstm {
    fn gate_pre(&self, k: usize, x: &[f64], h: &[f64], j: usize) -> f64 {
        let hid = self.hidden;
        let inp = self.inputs;
        let mut z = self.b[k * hid + j];
        for (idx, &xv) in x.iter().enumerate() {
            z += self.w[k * hid * inp + j * inp + idx] * xv;
        }
        for (idx, &hv) in h.iter().enumerate() {
            z += self.u[k * hid * hid + j * hid + idx] * hv;
        }
        z
    }

    fn forward_sequence(&self, seq: &[Vec<f64>]) -> (Vec<StepCache>, f64) {
        let hid = self.hidden;
        let mut h = vec![0.0; hid];
        let mut c = vec![0.0; hid];
        let mut caches = Vec::with_capacity(seq.len());
        for x in seq {
            let mut cache = StepCache {
                x: x.clone(),
                h_prev: h.clone(),
                c_prev: c.clone(),
                i: vec![0.0; hid],
                f: vec![0.0; hid],
                o: vec![0.0; hid],
                g: vec![0.0; hid],
                c: vec![0.0; hid],
                tanh_c: vec![0.0; hid],
            };
            for j in 0..hid {
                cache.i[j] = sigmoid(self.gate_pre(0, x, &cache.h_prev, j));
                cache.f[j] = sigmoid(self.gate_pre(1, x, &cache.h_prev, j));
                cache.o[j] = sigmoid(self.gate_pre(2, x, &cache.h_prev, j));
                cache.g[j] = self.gate_pre(3, x, &cache.h_prev, j).tanh();
                cache.c[j] = cache.f[j] * cache.c_prev[j] + cache.i[j] * cache.g[j];
                cache.tanh_c[j] = cache.c[j].tanh();
            }
            c = cache.c.clone();
            h = (0..hid).map(|j| cache.o[j] * cache.tanh_c[j]).collect();
            caches.push(cache);
        }
        let logit: f64 = (0..hid).map(|j| self.w_out[j] * h[j]).sum::<f64>() + self.b_out;
        (caches, sigmoid(logit))
    }

    /// Classification probability for one sequence.
    #[must_use]
    pub fn probability(&self, seq: &[Vec<f64>]) -> f64 {
        self.forward_sequence(seq).1
    }

    /// f64 accuracy over a dataset.
    #[must_use]
    pub fn accuracy_f64(&self, data: &SequenceDataset) -> f64 {
        let correct = data
            .sequences
            .iter()
            .zip(&data.labels)
            .filter(|(s, &l)| (self.probability(s) > 0.5) == l)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Quantises the gate weights into a fixed-point [`LstmCell`] plus the
    /// f64 read-out `(w_out, b_out)` (the read-out is a single dot product;
    /// downstream code may quantise it with a [`crate::dense::Dense`]).
    #[must_use]
    pub fn quantize(&self, format: QFormat) -> (LstmCell, Vec<f64>, f64) {
        let cell = LstmCell::from_f64(self.inputs, self.hidden, &self.w, &self.u, &self.b, format);
        (cell, self.w_out.clone(), self.b_out)
    }
}

/// Trains the single-cell LSTM classifier with full BPTT and plain SGD.
///
/// Deterministic for fixed arguments.
///
/// # Panics
///
/// Panics on an empty dataset, zero hidden width or non-positive learning
/// rate.
#[must_use]
#[allow(clippy::needless_range_loop)] // BPTT index algebra reads clearest indexed
pub fn train_lstm(
    data: &SequenceDataset,
    hidden: usize,
    epochs: usize,
    lr: f64,
    seed: u64,
) -> TrainedLstm {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    assert!(hidden > 0, "hidden width must be positive");
    assert!(lr > 0.0, "learning rate must be positive");
    let inputs = data.sequences[0][0].len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut init = |n: usize, fan: usize| -> Vec<f64> {
        let s = (1.0 / fan as f64).sqrt();
        (0..n).map(|_| rng.gen_range(-s..s)).collect()
    };
    let mut net = TrainedLstm {
        inputs,
        hidden,
        w: init(4 * hidden * inputs, inputs),
        u: init(4 * hidden * hidden, hidden),
        b: {
            let mut b = vec![0.0; 4 * hidden];
            // Forget-gate bias trick: start remembering.
            for v in &mut b[hidden..2 * hidden] {
                *v = 1.0;
            }
            b
        },
        w_out: init(hidden, hidden),
        b_out: 0.0,
    };
    for _ in 0..epochs {
        for (seq, &label) in data.sequences.iter().zip(&data.labels) {
            let (caches, p) = net.forward_sequence(seq);
            let hid = hidden;
            let steps = caches.len();
            // Output gradient (BCE): dL/dlogit = p − y.
            let dlogit = p - f64::from(u8::from(label));
            let last = &caches[steps - 1];
            let h_last: Vec<f64> = (0..hid).map(|j| last.o[j] * last.tanh_c[j]).collect();
            let mut dh: Vec<f64> = (0..hid).map(|j| dlogit * net.w_out[j]).collect();
            for j in 0..hid {
                net.w_out[j] -= lr * dlogit * h_last[j];
            }
            net.b_out -= lr * dlogit;
            let mut dc = vec![0.0; hid];
            // Accumulated parameter gradients.
            let mut gw = vec![0.0; net.w.len()];
            let mut gu = vec![0.0; net.u.len()];
            let mut gb = vec![0.0; net.b.len()];
            for t in (0..steps).rev() {
                let cache = &caches[t];
                let mut dh_prev = vec![0.0; hid];
                let mut dc_prev = vec![0.0; hid];
                for j in 0..hid {
                    let do_ = dh[j] * cache.tanh_c[j];
                    let dcj = dc[j] + dh[j] * cache.o[j] * (1.0 - cache.tanh_c[j].powi(2));
                    let di = dcj * cache.g[j];
                    let df = dcj * cache.c_prev[j];
                    let dg = dcj * cache.i[j];
                    dc_prev[j] = dcj * cache.f[j];
                    // Pre-activation gradients.
                    let dz = [
                        di * cache.i[j] * (1.0 - cache.i[j]),
                        df * cache.f[j] * (1.0 - cache.f[j]),
                        do_ * cache.o[j] * (1.0 - cache.o[j]),
                        dg * (1.0 - cache.g[j].powi(2)),
                    ];
                    for (k, dzk) in dz.into_iter().enumerate() {
                        gb[k * hid + j] += dzk;
                        for (idx, &xv) in cache.x.iter().enumerate() {
                            gw[k * hid * inputs + j * inputs + idx] += dzk * xv;
                        }
                        for idx in 0..hid {
                            gu[k * hid * hid + j * hid + idx] += dzk * cache.h_prev[idx];
                            dh_prev[idx] += dzk * net.u[k * hid * hid + j * hid + idx];
                        }
                    }
                }
                dh = dh_prev;
                dc = dc_prev;
            }
            // Clipped SGD step (BPTT gradients can spike early in training).
            let clip = 5.0;
            let apply = |p: &mut [f64], g: &[f64]| {
                for (pv, gv) in p.iter_mut().zip(g) {
                    *pv -= lr * gv.clamp(-clip, clip);
                }
            };
            apply(&mut net.w, &gw);
            apply(&mut net.u, &gu);
            apply(&mut net.b, &gb);
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{NacuActivation, Nonlinearity, ReferenceActivation};
    use crate::tensor::quantize_vec;
    use nacu_fixed::Fx;

    #[test]
    fn memory_task_is_learnable() {
        let train = memory_task(300, 8, 1);
        let test = memory_task(100, 8, 2);
        let net = train_lstm(&train, 8, 12, 0.05, 3);
        let acc = net.accuracy_f64(&test);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let d = memory_task(50, 6, 4);
        let a = train_lstm(&d, 4, 3, 0.05, 7);
        let b = train_lstm(&d, 4, 3, 0.05, 7);
        assert_eq!(a.w, b.w);
        assert_eq!(a.u, b.u);
    }

    #[test]
    fn quantised_cell_with_nacu_matches_f64_decisions() {
        let train = memory_task(300, 8, 11);
        let test = memory_task(60, 8, 12);
        let net = train_lstm(&train, 8, 12, 0.05, 5);
        let fmt = QFormat::new(4, 11).unwrap();
        let (cell, w_out, b_out) = net.quantize(fmt);
        let nacu = NacuActivation::paper_16bit();
        let reference = ReferenceActivation::new(fmt);
        let mut agree_f64 = 0;
        let mut agree_ref = 0;
        for (seq, &label) in test.sequences.iter().zip(&test.labels) {
            let run = |nl: &dyn Nonlinearity| -> bool {
                let fixed_seq: Vec<Vec<Fx>> = seq.iter().map(|x| quantize_vec(x, fmt)).collect();
                let state = cell.run(&fixed_seq, nl);
                let logit: f64 = state
                    .h
                    .iter()
                    .zip(&w_out)
                    .map(|(h, w)| h.to_f64() * w)
                    .sum::<f64>()
                    + b_out;
                logit > 0.0
            };
            let nacu_pred = run(&nacu);
            let ref_pred = run(&reference);
            if nacu_pred == (net.probability(seq) > 0.5) || nacu_pred == label {
                agree_f64 += 1;
            }
            if nacu_pred == ref_pred {
                agree_ref += 1;
            }
        }
        // NACU and reference fixed-point inference almost always agree.
        assert!(
            agree_ref >= test.len() - 2,
            "nacu vs reference: {agree_ref}/{}",
            test.len()
        );
        assert!(agree_f64 >= test.len() * 8 / 10);
    }

    #[test]
    fn forget_bias_initialisation_is_applied() {
        let d = memory_task(10, 4, 0);
        let net = train_lstm(&d, 4, 0, 0.05, 0); // zero epochs: raw init
        for j in 0..4 {
            assert!((net.b[4 + j] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let d = SequenceDataset {
            sequences: vec![],
            labels: vec![],
        };
        let _ = train_lstm(&d, 4, 1, 0.1, 0);
    }
}
