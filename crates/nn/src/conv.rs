//! A small fixed-point 2-D convolution layer.
//!
//! CNNs are the first workload the paper's introduction names for the
//! reconfigurable fabric; the convolution sum is exactly what NACU's MAC
//! mode accumulates before the non-linearity is applied (§V.B: "accumulate
//! a convolution sum that is common in ANNs before the non-linearity").

use nacu::datapath::MacAccumulator;
use nacu_fixed::{Fx, QFormat, Rounding};

use crate::activation::Nonlinearity;

/// A 2-D feature map (single channel, row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMap {
    height: usize,
    width: usize,
    data: Vec<Fx>,
    format: QFormat,
}

impl FeatureMap {
    /// A zero map.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(height: usize, width: usize, format: QFormat) -> Self {
        assert!(height > 0 && width > 0, "dimensions must be positive");
        Self {
            height,
            width,
            data: vec![Fx::zero(format); height * width],
            format,
        }
    }

    /// Quantises an f64 image (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != height * width`.
    #[must_use]
    pub fn from_f64(height: usize, width: usize, values: &[f64], format: QFormat) -> Self {
        assert_eq!(values.len(), height * width, "shape mismatch");
        let mut m = Self::zeros(height, width, format);
        for (slot, &v) in m.data.iter_mut().zip(values) {
            *slot = Fx::from_f64(v, format, Rounding::Nearest);
        }
        m
    }

    /// Map height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Map width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Fx {
        assert!(row < self.height && col < self.width, "out of bounds");
        self.data[row * self.width + col]
    }

    /// All elements, row-major.
    #[must_use]
    pub fn as_slice(&self) -> &[Fx] {
        &self.data
    }

    /// Flattens into a feature vector (for a dense head).
    #[must_use]
    pub fn into_vec(self) -> Vec<Fx> {
        self.data
    }
}

/// A single-channel valid-padding convolution with an optional σ/tanh
/// non-linearity applied through the supplied [`Nonlinearity`].
#[derive(Debug, Clone)]
pub struct Conv2d {
    kernel: Vec<Fx>,
    size: usize,
    bias: Fx,
    format: QFormat,
}

impl Conv2d {
    /// Builds a `size × size` kernel from f64 weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != size * size` or `size` is zero.
    #[must_use]
    pub fn from_f64(size: usize, weights: &[f64], bias: f64, format: QFormat) -> Self {
        assert!(size > 0, "kernel size must be positive");
        assert_eq!(weights.len(), size * size, "kernel shape mismatch");
        Self {
            kernel: crate::tensor::quantize_vec(weights, format),
            size,
            bias: Fx::from_f64(bias, format, Rounding::Nearest),
            format,
        }
    }

    /// Kernel size.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Valid-padding convolution: output is
    /// `(H − k + 1) × (W − k + 1)`; every output pixel is one MAC chain.
    ///
    /// # Panics
    ///
    /// Panics if the input is smaller than the kernel or the formats
    /// differ.
    #[must_use]
    pub fn forward(&self, input: &FeatureMap, activation: Option<&dyn Nonlinearity>) -> FeatureMap {
        assert!(
            input.height() >= self.size && input.width() >= self.size,
            "input smaller than kernel"
        );
        assert_eq!(input.format, self.format, "format mismatch");
        let oh = input.height() - self.size + 1;
        let ow = input.width() - self.size + 1;
        let mut out = FeatureMap::zeros(oh, ow, self.format);
        for r in 0..oh {
            for c in 0..ow {
                let mut mac = MacAccumulator::new(self.format);
                for kr in 0..self.size {
                    for kc in 0..self.size {
                        mac.step(self.kernel[kr * self.size + kc], input.get(r + kr, c + kc));
                    }
                }
                let pre = mac.value() + self.bias;
                let y = match activation {
                    Some(nl) => nl.tanh(pre),
                    None => pre,
                };
                out.data[r * ow + c] = y;
            }
        }
        out
    }
}

/// 2×2 max pooling (stride 2), the usual companion of a conv layer.
///
/// # Panics
///
/// Panics if either input dimension is below 2.
#[must_use]
pub fn max_pool2(input: &FeatureMap) -> FeatureMap {
    assert!(
        input.height() >= 2 && input.width() >= 2,
        "pooling needs at least 2x2"
    );
    let oh = input.height() / 2;
    let ow = input.width() / 2;
    let mut out = FeatureMap::zeros(oh, ow, input.format);
    for r in 0..oh {
        for c in 0..ow {
            let m = [
                input.get(2 * r, 2 * c),
                input.get(2 * r, 2 * c + 1),
                input.get(2 * r + 1, 2 * c),
                input.get(2 * r + 1, 2 * c + 1),
            ]
            .into_iter()
            .max_by(|a, b| a.raw().cmp(&b.raw()))
            .expect("four elements");
            out.data[r * ow + c] = m;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{NacuActivation, ReferenceActivation};

    fn q() -> QFormat {
        QFormat::new(4, 11).unwrap()
    }

    #[test]
    fn identity_kernel_passes_the_image_through() {
        let img = FeatureMap::from_f64(3, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], q());
        let conv = Conv2d::from_f64(1, &[1.0], 0.0, q());
        let out = conv.forward(&img, None);
        assert_eq!(out.as_slice(), img.as_slice());
    }

    #[test]
    fn box_filter_averages_up_to_scaling() {
        let img = FeatureMap::from_f64(2, 2, &[1.0, 1.0, 1.0, 1.0], q());
        let conv = Conv2d::from_f64(2, &[0.25; 4], 0.0, q());
        let out = conv.forward(&img, None);
        assert_eq!(out.height(), 1);
        assert_eq!(out.width(), 1);
        assert_eq!(out.get(0, 0).to_f64(), 1.0);
    }

    #[test]
    fn activation_is_applied_when_requested() {
        let img = FeatureMap::from_f64(1, 1, &[3.0], q());
        let conv = Conv2d::from_f64(1, &[2.0], 0.0, q());
        let nl = ReferenceActivation::new(q());
        let out = conv.forward(&img, Some(&nl));
        assert!((out.get(0, 0).to_f64() - 6.0_f64.tanh()).abs() < 1e-3);
    }

    #[test]
    fn nacu_activation_matches_reference_on_the_feature_map() {
        let vals: Vec<f64> = (0..25).map(|i| f64::from(i) * 0.1 - 1.2).collect();
        let img = FeatureMap::from_f64(5, 5, &vals, q());
        let conv = Conv2d::from_f64(
            3,
            &[0.1, -0.2, 0.1, 0.3, 0.2, -0.1, 0.0, 0.1, -0.3],
            0.05,
            q(),
        );
        let nacu = NacuActivation::paper_16bit();
        let golden = ReferenceActivation::new(q());
        let a = conv.forward(&img, Some(&nacu));
        let b = conv.forward(&img, Some(&golden));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x.to_f64() - y.to_f64()).abs() < 3e-3);
        }
    }

    #[test]
    fn pooling_halves_dimensions_and_keeps_maxima() {
        let img = FeatureMap::from_f64(2, 4, &[1.0, 2.0, 5.0, 3.0, 4.0, 0.0, -1.0, 6.0], q());
        let out = max_pool2(&img);
        assert_eq!((out.height(), out.width()), (1, 2));
        assert_eq!(out.get(0, 0).to_f64(), 4.0);
        assert_eq!(out.get(0, 1).to_f64(), 6.0);
    }

    #[test]
    #[should_panic(expected = "input smaller than kernel")]
    fn undersized_input_panics() {
        let img = FeatureMap::zeros(2, 2, q());
        let conv = Conv2d::from_f64(3, &[0.0; 9], 0.0, q());
        let _ = conv.forward(&img, None);
    }
}
