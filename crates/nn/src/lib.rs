//! Fixed-point neural-network substrate for the NACU reproduction.
//!
//! The paper motivates NACU with reconfigurable fabrics hosting "any mix
//! of ANNs and SNNs": CNN/MLP layers need σ/tanh activations and a softmax
//! classifier head, LSTMs need σ and tanh inside every cell, and
//! biologically plausible neurons need the exponential. This crate builds
//! those workloads so the unit can be exercised end-to-end:
//!
//! * [`tensor`] — a minimal fixed-point matrix type whose matmul runs
//!   through NACU's MAC accumulator semantics;
//! * [`activation`] — the [`activation::Nonlinearity`] trait with the
//!   bit-accurate NACU implementation, an exact f64 reference, and every
//!   related-work comparator adaptable via closures;
//! * [`engine`] — an adapter running the same trait on a shared
//!   [`nacu_engine`] worker pool, so many forward passes batch onto a
//!   sharded set of NACU units;
//! * [`dense`] / [`mlp`] / [`conv`] — inference layers (dense, 2-D
//!   convolution + pooling) and a softmax classifier;
//! * [`lstm`] — an LSTM cell (4 gates, 3 σ + 2 tanh per step);
//! * [`train`] / [`train_lstm`] — small f64 SGD/BPTT trainers so quantised
//!   inference runs on *realistic* weights rather than random ones;
//! * [`data`] — seeded synthetic datasets (Gaussian blobs, two-spirals,
//!   XOR clouds) substituting for the proprietary workloads;
//! * [`snn`] — an adaptive-exponential integrate-and-fire neuron whose
//!   exp term runs on the normalised NACU exponential path.

pub mod activation;
pub mod conv;
pub mod data;
pub mod dense;
pub mod engine;
pub mod lstm;
pub mod mlp;
pub mod snn;
pub mod tensor;
pub mod train;
pub mod train_lstm;
