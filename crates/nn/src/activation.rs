//! Pluggable non-linearities for the fixed-point layers.
//!
//! Every layer takes a [`Nonlinearity`] so the same network can run with
//! the bit-accurate NACU unit, the exact f64 reference (quantised at the
//! output only), or any other evaluator — that is how the end-to-end
//! "does the approximation hurt the network?" experiments are built.

use nacu::{Nacu, NacuConfig, NacuError};
use nacu_fixed::{Fx, QFormat, Rounding};
use nacu_funcapprox::reference;

/// The activation interface the layers consume.
///
/// Implementations receive and return values in [`Nonlinearity::format`].
pub trait Nonlinearity {
    /// The fixed-point format this non-linearity operates in.
    fn format(&self) -> QFormat;

    /// Logistic sigmoid.
    fn sigmoid(&self, x: Fx) -> Fx;

    /// Hyperbolic tangent.
    fn tanh(&self, x: Fx) -> Fx;

    /// Exponential of a non-positive (normalised) operand, `e^x` for
    /// `x ≤ 0`; positive operands clamp to 0 as in the NACU datapath.
    fn exp_neg(&self, x: Fx) -> Fx;

    /// Vector softmax (max-normalised).
    ///
    /// # Panics
    ///
    /// Implementations may panic on an empty slice.
    fn softmax(&self, inputs: &[Fx]) -> Vec<Fx>;
}

/// The NACU-backed non-linearity.
#[derive(Debug, Clone)]
pub struct NacuActivation {
    nacu: Nacu,
}

impl NacuActivation {
    /// Builds a NACU instance for the given configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`NacuError`] from [`Nacu::new`].
    pub fn new(config: NacuConfig) -> Result<Self, NacuError> {
        Ok(Self {
            nacu: Nacu::new(config)?,
        })
    }

    /// The paper's 16-bit configuration.
    ///
    /// # Panics
    ///
    /// Never panics — the paper configuration always validates.
    #[must_use]
    pub fn paper_16bit() -> Self {
        Self::new(NacuConfig::paper_16bit()).expect("paper config is valid")
    }

    /// The wrapped unit.
    #[must_use]
    pub fn nacu(&self) -> &Nacu {
        &self.nacu
    }
}

impl Nonlinearity for NacuActivation {
    fn format(&self) -> QFormat {
        self.nacu.config().format
    }

    fn sigmoid(&self, x: Fx) -> Fx {
        self.nacu.sigmoid(x)
    }

    fn tanh(&self, x: Fx) -> Fx {
        self.nacu.tanh(x)
    }

    fn exp_neg(&self, x: Fx) -> Fx {
        self.nacu.exp(x)
    }

    fn softmax(&self, inputs: &[Fx]) -> Vec<Fx> {
        self.nacu
            .softmax(inputs)
            .expect("layer vectors are non-empty")
    }
}

/// The golden reference: exact f64 math, quantised only at the output.
#[derive(Debug, Clone, Copy)]
pub struct ReferenceActivation {
    format: QFormat,
}

impl ReferenceActivation {
    /// Creates a reference non-linearity in the given format.
    #[must_use]
    pub fn new(format: QFormat) -> Self {
        Self { format }
    }
}

impl Nonlinearity for ReferenceActivation {
    fn format(&self) -> QFormat {
        self.format
    }

    fn sigmoid(&self, x: Fx) -> Fx {
        Fx::from_f64(
            reference::sigmoid(x.to_f64()),
            self.format,
            Rounding::Nearest,
        )
    }

    fn tanh(&self, x: Fx) -> Fx {
        Fx::from_f64(x.to_f64().tanh(), self.format, Rounding::Nearest)
    }

    fn exp_neg(&self, x: Fx) -> Fx {
        Fx::from_f64(x.to_f64().min(0.0).exp(), self.format, Rounding::Nearest)
    }

    fn softmax(&self, inputs: &[Fx]) -> Vec<Fx> {
        let vals: Vec<f64> = inputs.iter().map(Fx::to_f64).collect();
        reference::softmax(&vals)
            .into_iter()
            .map(|v| Fx::from_f64(v, self.format, Rounding::Nearest))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nacu_tracks_the_reference_closely() {
        let nacu = NacuActivation::paper_16bit();
        let golden = ReferenceActivation::new(nacu.format());
        let fmt = nacu.format();
        for v in [-6.0, -1.5, 0.0, 0.7, 3.2, 12.0] {
            let x = Fx::from_f64(v, fmt, Rounding::Nearest);
            assert!(
                (nacu.sigmoid(x).to_f64() - golden.sigmoid(x).to_f64()).abs() < 2e-3,
                "σ({v})"
            );
            assert!(
                (nacu.tanh(x).to_f64() - golden.tanh(x).to_f64()).abs() < 3e-3,
                "tanh({v})"
            );
        }
    }

    #[test]
    fn softmax_implementations_agree() {
        let nacu = NacuActivation::paper_16bit();
        let golden = ReferenceActivation::new(nacu.format());
        let fmt = nacu.format();
        let xs: Vec<Fx> = [0.3, 2.0, -1.0]
            .iter()
            .map(|&v| Fx::from_f64(v, fmt, Rounding::Nearest))
            .collect();
        let a = nacu.softmax(&xs);
        let b = golden.softmax(&xs);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.to_f64() - y.to_f64()).abs() < 5e-3);
        }
    }

    #[test]
    fn trait_objects_work() {
        let acts: Vec<Box<dyn Nonlinearity>> = vec![
            Box::new(NacuActivation::paper_16bit()),
            Box::new(ReferenceActivation::new(QFormat::new(4, 11).unwrap())),
        ];
        for a in &acts {
            let x = Fx::zero(a.format());
            assert!((a.sigmoid(x).to_f64() - 0.5).abs() < 1e-3);
            assert!((a.exp_neg(x).to_f64() - 1.0).abs() < 2e-3);
        }
    }
}
