//! Flattened response tables: the whole unary transfer function of a
//! narrow NACU, precomputed by the datapath itself.
//!
//! For an `N`-bit format with `N ≤ 16`, σ/tanh/exp are pure functions of
//! a ≤16-bit two's-complement input code, so the **entire** response fits
//! in a `2^N`-entry table of output codes — the flattened-LUT end of the
//! design space the segmented coefficient LUT economises on (cf. the
//! activation-circuit DSE literature). The serving engine uses these
//! tables as its hot path: one bounds-checked index per operand instead
//! of a segment select, a Fig. 3 bias transform and (for exp) a restoring
//! division.
//!
//! Bit-identity is **by construction**, not by approximation: the builder
//! runs the golden [`Nacu`] datapath once over every input code and
//! stores the raw output codes verbatim. A table lookup therefore cannot
//! disagree with the datapath — the exhaustive equivalence tests in this
//! module and in `nacu-engine` merely re-verify what the construction
//! already guarantees.
//!
//! Memory cost: 2 bytes per code per function — 128 KiB per function and
//! 384 KiB for all three at the paper's 16-bit format, proportionally
//! less for narrower sweeps. Formats wider than
//! [`ResponseTables::MAX_TABLE_BITS`] get no tables
//! ([`ResponseTables::build`] returns `None`) and callers fall back to
//! the datapath.

use nacu_fixed::{Fx, QFormat};

use crate::config::Function;
use crate::datapath::Nacu;

/// One unary function's complete response, indexed by raw input code.
#[derive(Debug, Clone)]
pub struct ResponseTable {
    function: Function,
    format: QFormat,
    /// `codes[(x.raw() - min_raw) as usize]` is the raw output code for
    /// input `x`. `i16` holds any code of a ≤16-bit format.
    codes: Box<[i16]>,
}

impl ResponseTable {
    /// Tabulates `function` by evaluating the golden datapath at every
    /// one of the format's `2^N` input codes.
    fn build(nacu: &Nacu, function: Function) -> Self {
        let format = nacu.config().format;
        let codes: Box<[i16]> = format
            .raw_codes()
            .map(|raw| {
                let x = Fx::from_raw_saturating(raw, format);
                nacu.compute(function, x).raw() as i16
            })
            .collect();
        // The batch-gather entry points below rely on the exact-2^N size
        // to make masked indexing a no-op (see `index_mask`).
        assert!(
            codes.len().is_power_of_two(),
            "an N-bit format has exactly 2^N codes"
        );
        Self {
            function,
            format,
            codes,
        }
    }

    /// The tabulated function.
    #[must_use]
    pub fn function(&self) -> Function {
        self.function
    }

    /// The input/output format the table was built for.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Table size in entries (`2^N`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `false` always — a built table covers every input code.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The function value at `x`, bit-identical to the datapath that
    /// built the table.
    ///
    /// # Panics
    ///
    /// Panics if `x` carries a different format than the table was built
    /// for (same contract as [`Nacu::compute`]).
    #[must_use]
    #[inline]
    pub fn lookup(&self, x: Fx) -> Fx {
        assert_eq!(
            x.format(),
            self.format,
            "input format {} does not match the tabulated {}",
            x.format(),
            self.format
        );
        let index = (x.raw() - self.format.min_raw()) as usize;
        Fx::from_raw_saturating(i64::from(self.codes[index]), self.format)
    }

    /// The raw output codes, indexed by `(x.raw() - format.min_raw())`.
    /// Exposed for batch executors that gather many entries per call;
    /// combine with [`Self::index_mask`] for provably in-bounds indexing.
    #[must_use]
    pub fn codes(&self) -> &[i16] {
        &self.codes
    }

    /// `len() - 1`, usable as an index mask: the table holds exactly
    /// `2^N` entries (asserted at build), so `offset & index_mask()` is
    /// always `< len()`. For any in-range input the AND is a no-op —
    /// `x.raw() - min_raw()` already lies in `[0, 2^N)` — it exists so
    /// the compiler can *prove* the bound and drop the bounds check from
    /// gather loops.
    #[must_use]
    #[inline]
    pub fn index_mask(&self) -> usize {
        self.codes.len() - 1
    }

    /// [`Self::lookup`] without the release-mode format assert, for hot
    /// batch loops whose inputs were already validated upstream (the
    /// serving engine checks every operand's format at submit). The index
    /// is masked, so even a format-confused caller reads a wrong-but-
    /// in-bounds entry rather than panicking mid-batch.
    #[must_use]
    #[inline]
    pub fn lookup_fast(&self, x: Fx) -> Fx {
        debug_assert_eq!(
            x.format(),
            self.format,
            "input format {} does not match the tabulated {}",
            x.format(),
            self.format
        );
        let index = (x.raw() - self.format.min_raw()) as usize & self.index_mask();
        Fx::from_raw_saturating(i64::from(self.codes[index]), self.format)
    }

    /// Rewrites every element of `xs` with its table response, in place.
    /// This is the scalar reference gather the vectorized executors in
    /// `nacu-engine` are verified against.
    #[inline]
    pub fn lookup_in_place(&self, xs: &mut [Fx]) {
        for x in xs {
            *x = self.lookup_fast(*x);
        }
    }
}

/// The three unary tables of one configuration, built together so a
/// serving pool can share them behind one `Arc`.
#[derive(Debug, Clone)]
pub struct ResponseTables {
    sigmoid: ResponseTable,
    tanh: ResponseTable,
    exp: ResponseTable,
    format: QFormat,
}

impl ResponseTables {
    /// Widest format the tables are built for. Beyond 16 bits the table
    /// grows past `2^16` entries per function and the flattened-LUT
    /// trade-off inverts: the segmented coefficient LUT is the smaller
    /// artefact, so wide configurations keep the datapath.
    pub const MAX_TABLE_BITS: u32 = 16;

    /// Builds σ/tanh/exp tables from the golden datapath, or `None` when
    /// the format is wider than [`Self::MAX_TABLE_BITS`].
    #[must_use]
    pub fn build(nacu: &Nacu) -> Option<Self> {
        let format = nacu.config().format;
        if format.total_bits() > Self::MAX_TABLE_BITS {
            return None;
        }
        Some(Self {
            sigmoid: ResponseTable::build(nacu, Function::Sigmoid),
            tanh: ResponseTable::build(nacu, Function::Tanh),
            exp: ResponseTable::build(nacu, Function::Exp),
            format,
        })
    }

    /// The format the tables serve.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// The table for a unary function, `None` for softmax/MAC (softmax
    /// keeps the divider and draws only its exp stage from
    /// [`Self::exp`]).
    #[must_use]
    pub fn get(&self, function: Function) -> Option<&ResponseTable> {
        match function {
            Function::Sigmoid => Some(&self.sigmoid),
            Function::Tanh => Some(&self.tanh),
            Function::Exp => Some(&self.exp),
            _ => None,
        }
    }

    /// The exp table — softmax's table-served stage.
    #[must_use]
    pub fn exp(&self) -> &ResponseTable {
        &self.exp
    }

    /// Total table memory in bytes (the fast path's footprint).
    #[must_use]
    pub fn bytes(&self) -> usize {
        (self.sigmoid.len() + self.tanh.len() + self.exp.len()) * std::mem::size_of::<i16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NacuConfig;

    fn tables_for(config: NacuConfig) -> (Nacu, ResponseTables) {
        let nacu = Nacu::new(config).expect("valid config");
        let tables = ResponseTables::build(&nacu).expect("narrow enough to tabulate");
        (nacu, tables)
    }

    /// The tentpole guarantee, exhaustively at the paper's format: every
    /// one of the 2^16 codes agrees bit-for-bit for all three functions.
    #[test]
    fn paper_16bit_tables_match_the_datapath_on_every_code() {
        let (nacu, tables) = tables_for(NacuConfig::paper_16bit());
        let fmt = nacu.config().format;
        for function in [Function::Sigmoid, Function::Tanh, Function::Exp] {
            let table = tables.get(function).expect("unary");
            for raw in fmt.raw_codes() {
                let x = Fx::from_raw_saturating(raw, fmt);
                assert_eq!(
                    table.lookup(x),
                    nacu.compute(function, x),
                    "{function} diverges at raw {raw}"
                );
            }
        }
    }

    /// Every width in the paper's sweep that fits the table budget gets
    /// an exhaustive bit-identity check (narrow formats are cheap: 2^N).
    #[test]
    fn width_sweep_tables_match_the_datapath_exhaustively() {
        for width in [8u32, 10, 12, 14, 16] {
            let config = NacuConfig::for_width(width).expect("sweep width");
            let (nacu, tables) = tables_for(config);
            let fmt = nacu.config().format;
            for function in [Function::Sigmoid, Function::Tanh, Function::Exp] {
                let table = tables.get(function).expect("unary");
                for raw in fmt.raw_codes() {
                    let x = Fx::from_raw_saturating(raw, fmt);
                    assert_eq!(
                        table.lookup(x),
                        nacu.compute(function, x),
                        "{function} diverges at width {width}, raw {raw}"
                    );
                }
            }
        }
    }

    #[test]
    fn softmax_with_table_exp_is_bit_identical_to_the_datapath() {
        let (nacu, tables) = tables_for(NacuConfig::paper_16bit());
        let fmt = nacu.config().format;
        let inputs: Vec<Fx> = [-3.2, 0.0, 1.5, 7.75, -0.125, 2.0]
            .iter()
            .map(|&v| Fx::from_f64(v, fmt, nacu_fixed::Rounding::Nearest))
            .collect();
        let golden = nacu.softmax(&inputs).expect("valid vector");
        let fast = nacu
            .softmax_with(&inputs, |x| tables.exp().lookup(x))
            .expect("valid vector");
        assert_eq!(golden, fast);
    }

    /// The masked fast lookup and the in-place batch gather agree with
    /// the asserting scalar lookup on every code of the paper's format.
    #[test]
    fn fast_and_in_place_lookups_match_the_checked_lookup_exhaustively() {
        let (nacu, tables) = tables_for(NacuConfig::paper_16bit());
        let fmt = nacu.config().format;
        for function in [Function::Sigmoid, Function::Tanh, Function::Exp] {
            let table = tables.get(function).expect("unary");
            assert_eq!(table.index_mask(), table.len() - 1);
            assert_eq!(table.codes().len(), table.len());
            let mut batch: Vec<Fx> = fmt
                .raw_codes()
                .map(|raw| Fx::from_raw_saturating(raw, fmt))
                .collect();
            for &x in &batch {
                assert_eq!(table.lookup_fast(x), table.lookup(x));
            }
            let expect: Vec<Fx> = batch.iter().map(|&x| table.lookup(x)).collect();
            table.lookup_in_place(&mut batch);
            assert_eq!(batch, expect);
        }
    }

    #[test]
    fn wide_formats_are_not_tabulated() {
        let nacu = Nacu::new(NacuConfig::for_width(18).expect("wide sweep")).expect("valid");
        assert!(ResponseTables::build(&nacu).is_none());
    }

    #[test]
    fn table_memory_cost_matches_the_documented_figure() {
        let (_, tables) = tables_for(NacuConfig::paper_16bit());
        // 3 functions × 2^16 entries × 2 bytes = 384 KiB.
        assert_eq!(tables.bytes(), 3 * 65_536 * 2);
        assert_eq!(tables.get(Function::Sigmoid).unwrap().len(), 65_536);
        assert!(tables.get(Function::Softmax).is_none());
        assert!(tables.get(Function::Mac).is_none());
    }

    #[test]
    #[should_panic(expected = "does not match the tabulated")]
    fn lookup_rejects_alien_formats() {
        let (_, tables) = tables_for(NacuConfig::paper_16bit());
        let alien = Fx::zero(QFormat::new(2, 13).unwrap());
        let _ = tables.exp().lookup(alien);
    }
}
