//! Synthesizable Verilog export of a configured NACU.
//!
//! The paper's artifact is an RTL design (the silagokth/NACU repository);
//! this module regenerates the equivalent structure from a configured
//! [`Nacu`] model: the coefficient ROM with the fitted `(m₁, q)` contents,
//! the three Fig. 3 bias units as pure combinational bit manipulation, and
//! a behavioural top-level for the σ/tanh multiply-add path. The emitted
//! text is self-contained Verilog-2001.
//!
//! The generator's value for the reproduction is traceability: every ROM
//! word in the emitted file is the exact raw code the bit-accurate model
//! computes with, so an RTL simulation diff against [`Nacu`] is purely
//! mechanical.

use std::fmt::Write as _;

use crate::config::NacuConfig;
use crate::datapath::Nacu;
use crate::NacuError;

/// Emits the coefficient ROM: one `case` entry per LUT record holding the
/// concatenated `{m1, q}` raw codes.
///
/// # Errors
///
/// Propagates [`NacuError`] from model construction.
pub fn coeff_rom(config: NacuConfig) -> Result<String, NacuError> {
    let nacu = Nacu::new(config)?;
    let n = config.format.total_bits();
    let coef_bits = n - 1; // Q1.(N-2): sign + 1 + (N-2) -> stored in n bits
    let addr_bits = usize::BITS - (nacu.lut_entries() - 1).leading_zeros();
    let mut v = String::new();
    let _ = writeln!(v, "// Auto-generated NACU coefficient ROM");
    let _ = writeln!(
        v,
        "// format {}, {} entries, minimax-fitted sigmoid segments",
        config.format,
        nacu.lut_entries()
    );
    let _ = writeln!(v, "module nacu_coeff_rom #(");
    let _ = writeln!(v, "    parameter WORD = {n},");
    let _ = writeln!(v, "    parameter ADDR = {addr_bits}");
    let _ = writeln!(v, ") (");
    let _ = writeln!(v, "    input  wire [ADDR-1:0] addr,");
    let _ = writeln!(v, "    output reg  [WORD-1:0] m1,");
    let _ = writeln!(v, "    output reg  [WORD-1:0] q");
    let _ = writeln!(v, ");");
    let _ = writeln!(v, "    always @* begin");
    let _ = writeln!(v, "        case (addr)");
    for (idx, (m1, q)) in nacu.coefficients().iter().enumerate() {
        let mask = (1_u64 << n) - 1;
        let _ = writeln!(
            v,
            "            {addr_bits}'d{idx}: begin m1 = {n}'h{:0width$X}; q = {n}'h{:0width$X}; end",
            (*m1 as u64) & mask,
            (*q as u64) & mask,
            width = n.div_ceil(4) as usize
        );
    }
    let _ = writeln!(v, "            default: begin m1 = {n}'h0; q = {n}'h0; end");
    let _ = writeln!(v, "        endcase");
    let _ = writeln!(v, "    end");
    let _ = writeln!(v, "endmodule");
    let _ = coef_bits; // documented width; kept for readers of the header
    Ok(v)
}

/// Emits the three Fig. 3 bias units as one combinational module with a
/// 2-bit select (`00`: 1−q, `01`: 2q−1, `10`: 1−2q, `11`: pass-through).
#[must_use]
pub fn bias_units(word_bits: u32, frac_bits: u32) -> String {
    let mut v = String::new();
    let _ = writeln!(v, "// Auto-generated NACU bias-derivation units (Fig. 3)");
    let _ = writeln!(v, "module nacu_bias_unit #(");
    let _ = writeln!(v, "    parameter WORD = {word_bits},");
    let _ = writeln!(v, "    parameter FRAC = {frac_bits}");
    let _ = writeln!(v, ") (");
    let _ = writeln!(v, "    input  wire [WORD-1:0] q,     // bias in [0.5, 1]");
    let _ = writeln!(v, "    input  wire [1:0]      sel,");
    let _ = writeln!(v, "    output reg  [WORD-1:0] r");
    let _ = writeln!(v, ");");
    let _ = writeln!(v, "    wire [FRAC-1:0] frac = q[FRAC-1:0];");
    let _ = writeln!(v, "    wire [WORD-1:0] two_q = q << 1;");
    let _ = writeln!(v, "    always @* begin");
    let _ = writeln!(v, "        case (sel)");
    let _ = writeln!(
        v,
        "            // Fig. 3a: 1 - q = two's complement of the fraction"
    );
    let _ = writeln!(
        v,
        "            2'b00: r = {{ {{(WORD-FRAC){{1'b0}}}}, (~frac + {{ {{(FRAC-1){{1'b0}}}}, 1'b1 }}) & {{FRAC{{|frac}}}} }};"
    );
    let _ = writeln!(
        v,
        "            // Fig. 3b: 2q - 1 = fraction with a1 propagated to a0"
    );
    let _ = writeln!(
        v,
        "            2'b01: r = {{ {{(WORD-FRAC-1){{1'b0}}}}, two_q[FRAC+1], two_q[FRAC-1:0] }};"
    );
    let _ = writeln!(
        v,
        "            // Fig. 3c: 1 - 2q = fraction with !a0 on every integer bit"
    );
    let _ = writeln!(
        v,
        "            2'b10: r = {{ {{(WORD-FRAC){{~(~two_q[FRAC])}}}}, (~two_q[FRAC-1:0] + {{ {{(FRAC-1){{1'b0}}}}, 1'b1 }}) }};"
    );
    let _ = writeln!(v, "            default: r = q;");
    let _ = writeln!(v, "        endcase");
    let _ = writeln!(v, "    end");
    let _ = writeln!(v, "endmodule");
    v
}

/// Emits a behavioural top-level of the σ/tanh path (LUT read, bias
/// derivation, multiply-add, single rounding), suitable for lint and
/// simulation against the bit-accurate model.
///
/// # Errors
///
/// Propagates [`NacuError`] from model construction.
pub fn datapath_top(config: NacuConfig) -> Result<String, NacuError> {
    let nacu = Nacu::new(config)?;
    let n = config.format.total_bits();
    let addr_bits = usize::BITS - (nacu.lut_entries() - 1).leading_zeros();
    let mut v = String::new();
    let _ = writeln!(
        v,
        "// Auto-generated NACU sigma/tanh datapath (behavioural)"
    );
    let _ = writeln!(v, "module nacu_sig_tanh #(");
    let _ = writeln!(v, "    parameter WORD = {n}");
    let _ = writeln!(v, ") (");
    let _ = writeln!(v, "    input  wire                 clk,");
    let _ = writeln!(v, "    input  wire                 tanh_mode,");
    let _ = writeln!(v, "    input  wire signed [WORD-1:0] x,");
    let _ = writeln!(v, "    output reg  signed [WORD-1:0] y");
    let _ = writeln!(v, ");");
    let _ = writeln!(v, "    // stage 1: magnitude + address");
    let _ = writeln!(v, "    wire neg = x[WORD-1];");
    let _ = writeln!(v, "    wire signed [WORD-1:0] mag = neg ? -x : x;");
    let _ = writeln!(
        v,
        "    wire signed [WORD:0] addr_arg = tanh_mode ? {{mag, 1'b0}} : {{mag[WORD-1], mag}};"
    );
    let _ = writeln!(
        v,
        "    wire [{addr_bits}-1:0] addr; // segment index (decoder elided)"
    );
    let _ = writeln!(v, "    // stage 2: coefficient fetch + bias derivation");
    let _ = writeln!(v, "    wire signed [WORD-1:0] m1, q;");
    let _ = writeln!(v, "    nacu_coeff_rom rom (.addr(addr), .m1(m1), .q(q));");
    let _ = writeln!(v, "    wire [WORD-1:0] bias;");
    let _ = writeln!(
        v,
        "    nacu_bias_unit bu (.q(q), .sel({{tanh_mode, neg}}), .r(bias));"
    );
    let _ = writeln!(v, "    // stage 3: multiply-add, one rounding");
    let _ = writeln!(
        v,
        "    wire signed [2*WORD-1:0] prod = (tanh_mode ? (m1 <<< 2) : m1) * (neg ? -mag : mag);"
    );
    let _ = writeln!(
        v,
        "    always @(posedge clk) y <= prod[2*WORD-1:WORD] + bias;"
    );
    let _ = writeln!(v, "endmodule");
    Ok(v)
}

/// Emits the full bundle (ROM + bias units + top level).
///
/// # Errors
///
/// Propagates [`NacuError`] from model construction.
pub fn full_design(config: NacuConfig) -> Result<String, NacuError> {
    let n = config.format.total_bits();
    Ok(format!(
        "{}\n{}\n{}",
        coeff_rom(config)?,
        bias_units(n, n - 3),
        datapath_top(config)?
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NacuConfig {
        NacuConfig::paper_16bit()
    }

    #[test]
    fn rom_has_one_case_per_entry() {
        let v = coeff_rom(cfg()).unwrap();
        let nacu = Nacu::new(cfg()).unwrap();
        let cases = v.matches("'d").count();
        assert_eq!(cases, nacu.lut_entries());
        assert!(v.contains("module nacu_coeff_rom"));
        assert!(v.contains("endmodule"));
    }

    #[test]
    fn rom_words_match_the_model_coefficients() {
        let v = coeff_rom(cfg()).unwrap();
        let nacu = Nacu::new(cfg()).unwrap();
        // Spot-check the first record: its hex pattern must appear.
        let (m1, q) = nacu.coefficients()[0];
        let hex = format!("16'h{:04X}", (m1 as u64) & 0xFFFF);
        assert!(v.contains(&hex), "missing slope word {hex}\n{v}");
        let hex = format!("16'h{:04X}", (q as u64) & 0xFFFF);
        assert!(v.contains(&hex), "missing bias word {hex}");
    }

    #[test]
    fn bias_module_covers_all_three_figures() {
        let v = bias_units(16, 13);
        assert!(v.contains("Fig. 3a"));
        assert!(v.contains("Fig. 3b"));
        assert!(v.contains("Fig. 3c"));
        assert!(v.contains("parameter FRAC = 13"));
    }

    #[test]
    fn full_design_is_three_modules() {
        let v = full_design(cfg()).unwrap();
        assert_eq!(v.matches("endmodule").count(), 3);
        assert_eq!(v.matches("module ").count(), 3);
        // Balanced begin/end case blocks.
        assert_eq!(v.matches("case (").count(), v.matches("endcase").count());
    }

    #[test]
    fn emitted_text_is_ascii_and_line_bounded() {
        let v = full_design(cfg()).unwrap();
        assert!(v.is_ascii(), "synthesis tools want plain ASCII");
        assert!(v.lines().all(|l| l.len() < 160));
    }
}
