//! Coefficient-ROM fault injection.
//!
//! A hardware unit's accuracy story is incomplete without its failure
//! modes: what does one stuck bit in the coefficient ROM cost? This module
//! flips individual bits of the stored `(m₁, q)` words and measures the
//! damage, supporting the kind of reliability ablation reviewers of
//! VLSI papers expect (and that the paper's CGRA context — shared fabric,
//! many instances — makes practically relevant).
//!
//! Key structural insight verified by the tests: because the negative σ
//! range and both tanh ranges **derive** their coefficients from the same
//! ROM word (Fig. 3), a single ROM fault corrupts all four branches
//! symmetrically — there is exactly one copy of the truth.

use nacu_funcapprox::metrics::{self, ErrorReport};
use nacu_funcapprox::reference;

use crate::config::NacuConfig;
use crate::datapath::Nacu;
use crate::NacuError;

/// Which word of a coefficient record a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// The slope word `m₁`.
    Slope,
    /// The bias word `q`.
    Bias,
}

/// A single stuck/flipped bit in the coefficient ROM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RomFault {
    /// LUT entry index.
    pub entry: usize,
    /// Which word of the record.
    pub target: FaultTarget,
    /// Bit position (0 = LSB) within the word.
    pub bit: u32,
}

/// Builds a NACU whose ROM carries the given bit-flip faults.
///
/// # Errors
///
/// Propagates configuration errors; returns [`NacuError::BadLutSize`] if a
/// fault addresses a non-existent entry.
pub fn inject(config: NacuConfig, faults: &[RomFault]) -> Result<Nacu, NacuError> {
    let golden = Nacu::new(config)?;
    let mut coefficients = golden.coefficients();
    for fault in faults {
        let Some(record) = coefficients.get_mut(fault.entry) else {
            return Err(NacuError::BadLutSize {
                entries: fault.entry,
            });
        };
        let word = match fault.target {
            FaultTarget::Slope => &mut record.0,
            FaultTarget::Bias => &mut record.1,
        };
        // Flip within the stored word's two's-complement pattern.
        let n = config.format.total_bits();
        let bit = fault.bit.min(n - 1);
        let mask = (1_i64 << n) - 1;
        let pattern = (*word & mask) ^ (1_i64 << bit);
        // Sign-extend back from bit N-1.
        *word = if pattern & (1_i64 << (n - 1)) != 0 {
            pattern - (1_i64 << n)
        } else {
            pattern
        };
    }
    Nacu::from_coefficients(config, &coefficients)
}

/// Measures the full-range σ error of a faulted unit.
#[must_use]
pub fn measure_sigma(nacu: &Nacu) -> ErrorReport {
    let fmt = nacu.config().format;
    metrics::sweep_raw_range(fmt, fmt.min_raw(), fmt.max_raw(), reference::sigmoid, |x| {
        nacu.sigmoid(x).to_f64()
    })
}

/// One row of a fault-sensitivity sweep.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// The injected fault.
    pub fault: RomFault,
    /// σ max error with the fault present.
    pub max_error: f64,
    /// Ratio to the fault-free max error.
    pub degradation: f64,
}

/// Sweeps a single-bit fault over every bit of one entry's two words.
///
/// # Errors
///
/// Propagates [`inject`] errors.
pub fn bit_sensitivity(config: NacuConfig, entry: usize) -> Result<Vec<SensitivityRow>, NacuError> {
    let baseline = measure_sigma(&Nacu::new(config)?).max_error;
    let mut rows = Vec::new();
    for target in [FaultTarget::Slope, FaultTarget::Bias] {
        for bit in 0..config.format.total_bits() {
            let fault = RomFault { entry, target, bit };
            let nacu = inject(config, &[fault])?;
            let max_error = measure_sigma(&nacu).max_error;
            rows.push(SensitivityRow {
                fault,
                max_error,
                degradation: max_error / baseline,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nacu_fixed::{Fx, Rounding};

    fn cfg() -> NacuConfig {
        NacuConfig::paper_16bit()
    }

    #[test]
    fn lsb_fault_is_nearly_harmless() {
        let fault = RomFault {
            entry: 3,
            target: FaultTarget::Bias,
            bit: 0,
        };
        let faulted = inject(cfg(), &[fault]).unwrap();
        let report = measure_sigma(&faulted);
        let baseline = measure_sigma(&Nacu::new(cfg()).unwrap());
        // One bias LSB (2^-13) perturbs one segment by at most one LSB.
        assert!(report.max_error < baseline.max_error + 2e-4);
    }

    #[test]
    fn msb_fault_is_catastrophic_and_detectable() {
        let fault = RomFault {
            entry: 0,
            target: FaultTarget::Bias,
            bit: 14, // top magnitude bit of the bias word
        };
        let faulted = inject(cfg(), &[fault]).unwrap();
        let report = measure_sigma(&faulted);
        assert!(
            report.max_error > 0.1,
            "an MSB flip must be glaring: {}",
            report.max_error
        );
    }

    #[test]
    fn fault_corrupts_all_derived_branches_symmetrically() {
        // One ROM word feeds σ(+), σ(−), tanh(+), tanh(−): Eq. 4's
        // structural symmetry must hold even on a faulted unit.
        let fault = RomFault {
            entry: 5,
            target: FaultTarget::Slope,
            bit: 9,
        };
        let faulted = inject(cfg(), &[fault]).unwrap();
        let fmt = faulted.config().format;
        let one = 1_i64 << fmt.frac_bits();
        for raw in (1..fmt.max_raw()).step_by(501) {
            let pos = faulted.sigmoid(Fx::from_raw(raw, fmt).unwrap()).raw();
            let neg = faulted.sigmoid(Fx::from_raw(-raw, fmt).unwrap()).raw();
            assert!(
                (pos + neg - one).abs() <= 1,
                "faulted unit keeps σ(x)+σ(−x)=1 at raw {raw}"
            );
        }
    }

    #[test]
    fn sensitivity_grows_with_bit_position() {
        let rows = bit_sensitivity(cfg(), 2).unwrap();
        let bias_rows: Vec<&SensitivityRow> = rows
            .iter()
            .filter(|r| r.fault.target == FaultTarget::Bias)
            .collect();
        let low = bias_rows[1].max_error; // bit 1
        let high = bias_rows[13].max_error; // bit 13
        assert!(
            high > 10.0 * low,
            "high bits must hurt more: {high} vs {low}"
        );
    }

    #[test]
    fn out_of_range_entry_is_rejected() {
        let fault = RomFault {
            entry: 10_000,
            target: FaultTarget::Slope,
            bit: 0,
        };
        assert!(matches!(
            inject(cfg(), &[fault]),
            Err(NacuError::BadLutSize { .. })
        ));
    }

    #[test]
    fn from_coefficients_round_trips_the_golden_rom() {
        let golden = Nacu::new(cfg()).unwrap();
        let rebuilt = Nacu::from_coefficients(cfg(), &golden.coefficients()).unwrap();
        let fmt = golden.config().format;
        for raw in (fmt.min_raw()..fmt.max_raw()).step_by(997) {
            let x = Fx::from_raw(raw, fmt).unwrap();
            assert_eq!(golden.sigmoid(x), rebuilt.sigmoid(x));
            assert_eq!(golden.tanh(x), rebuilt.tanh(x));
        }
        let x = Fx::from_f64(-1.0, fmt, Rounding::Nearest);
        assert_eq!(golden.exp(x), rebuilt.exp(x));
    }

    #[test]
    fn wrong_coefficient_count_is_rejected() {
        assert!(matches!(
            Nacu::from_coefficients(cfg(), &[(0, 0); 3]),
            Err(NacuError::BadLutSize { .. })
        ));
    }
}
