//! NACU configuration: function selection and datapath parameters.

use std::fmt;

use nacu_fixed::QFormat;
use nacu_funcapprox::segment::FitMethod;

use crate::format;
use crate::NacuError;

/// The function a NACU instance is dynamically configured to compute (§V).
///
/// Reconfiguration is the paper's headline feature: the same datapath
/// morphs between all five modes by multiplexer settings, not by swapping
/// hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Function {
    /// Logistic sigmoid over the full (positive and negative) input range.
    Sigmoid,
    /// Hyperbolic tangent over the full input range.
    Tanh,
    /// Exponential of a non-positive (max-normalised) input.
    Exp,
    /// Vector softmax, Eq. 13.
    Softmax,
    /// Plain multiply-accumulate (the convolution/denominator mode).
    Mac,
}

impl Function {
    /// All configurable functions.
    #[must_use]
    pub fn all() -> [Function; 5] {
        [
            Function::Sigmoid,
            Function::Tanh,
            Function::Exp,
            Function::Softmax,
            Function::Mac,
        ]
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Function::Sigmoid => "sigmoid",
            Function::Tanh => "tanh",
            Function::Exp => "exp",
            Function::Softmax => "softmax",
            Function::Mac => "mac",
        };
        f.write_str(name)
    }
}

/// Structural configuration of a NACU instance.
///
/// # Example
///
/// ```
/// use nacu::NacuConfig;
/// use nacu_fixed::QFormat;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The paper's unit: Q4.11, 53-entry coefficient LUT.
/// let cfg = NacuConfig::paper_16bit();
/// assert_eq!(cfg.format, QFormat::new(4, 11)?);
/// assert_eq!(cfg.lut_entries, 53);
///
/// // A narrower unit for the Fig. 6 bit-width sweeps.
/// let cfg10 = NacuConfig::for_width(10)?;
/// assert_eq!(cfg10.format.total_bits(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NacuConfig {
    /// Datapath word format (input and output share it, as §III
    /// recommends).
    pub format: QFormat,
    /// σ coefficient LUT entries (PWL segments over the positive range).
    pub lut_entries: usize,
    /// Per-segment fitting method used to generate the LUT contents.
    pub fit_method: FitMethod,
}

impl NacuConfig {
    /// The paper's reference configuration: 16-bit `Q4.11`, 53 LUT entries,
    /// minimax fitting.
    #[must_use]
    pub fn paper_16bit() -> Self {
        Self {
            format: QFormat::new(4, 11).expect("Q4.11 is valid"),
            lut_entries: 53,
            fit_method: FitMethod::Minimax,
        }
    }

    /// A configuration for an arbitrary word width, using the §III Eq. 7
    /// dimensioning and an entry count scaled to keep the PWL fit error at
    /// the width's quantisation floor (the procedure behind the Fig. 6c–e
    /// bit-width sweep).
    ///
    /// # Errors
    ///
    /// Returns [`NacuError::FormatTooNarrow`] if no `i_b` satisfies Eq. 7
    /// at this width.
    pub fn for_width(total_bits: u32) -> Result<Self, NacuError> {
        let fmt = format::recommended_format(total_bits).ok_or(NacuError::FormatTooNarrow {
            int_bits: 0,
            required: 1,
        })?;
        // PWL fit error scales as w²: to track the 2^{-f_b} floor the
        // entry count grows as 2^{f_b/2}. Anchored at the paper's 53 @ f_b=11.
        let entries = (53.0 * 2.0_f64.powf((f64::from(fmt.frac_bits()) - 11.0) / 2.0))
            .round()
            .clamp(4.0, 4096.0) as usize;
        Ok(Self {
            format: fmt,
            lut_entries: entries,
            fit_method: FitMethod::Minimax,
        })
    }

    /// Replaces the LUT entry count.
    #[must_use]
    pub fn with_lut_entries(mut self, entries: usize) -> Self {
        self.lut_entries = entries;
        self
    }

    /// Replaces the fitting method.
    #[must_use]
    pub fn with_fit_method(mut self, method: FitMethod) -> Self {
        self.fit_method = method;
        self
    }

    /// Validates the configuration against Eq. 7 and the LUT size limits.
    ///
    /// # Errors
    ///
    /// [`NacuError::FormatTooNarrow`] if Eq. 7 fails for the format,
    /// [`NacuError::BadLutSize`] for a zero or oversized LUT.
    pub fn validate(&self) -> Result<(), NacuError> {
        if !format::eq7_holds(self.format, self.format) {
            let required = format::min_int_bits(self.format.total_bits())
                .unwrap_or(self.format.int_bits() + 1);
            return Err(NacuError::FormatTooNarrow {
                int_bits: self.format.int_bits(),
                required,
            });
        }
        let codes = usize::try_from(self.format.max_raw()).unwrap_or(usize::MAX);
        if self.lut_entries == 0 || self.lut_entries > codes {
            return Err(NacuError::BadLutSize {
                entries: self.lut_entries,
            });
        }
        Ok(())
    }
}

impl Default for NacuConfig {
    fn default() -> Self {
        Self::paper_16bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_validates() {
        assert!(NacuConfig::paper_16bit().validate().is_ok());
    }

    #[test]
    fn for_width_reproduces_paper_at_16_bits() {
        let cfg = NacuConfig::for_width(16).unwrap();
        assert_eq!(cfg.format, QFormat::new(4, 11).unwrap());
        assert_eq!(cfg.lut_entries, 53);
    }

    #[test]
    fn related_work_widths_are_constructible() {
        // Fig. 6c–e compares NACU at 10, 14, 16, 18 and 21 bits.
        for n in [10, 14, 16, 18, 21] {
            let cfg = NacuConfig::for_width(n).unwrap();
            assert_eq!(cfg.format.total_bits(), n);
            assert!(cfg.validate().is_ok());
        }
    }

    #[test]
    fn narrow_format_is_rejected() {
        let cfg = NacuConfig {
            format: QFormat::new(1, 14).unwrap(), // 2 < ln2·14
            lut_entries: 53,
            fit_method: FitMethod::Minimax,
        };
        assert!(matches!(
            cfg.validate(),
            Err(NacuError::FormatTooNarrow { .. })
        ));
    }

    #[test]
    fn zero_lut_is_rejected() {
        let cfg = NacuConfig::paper_16bit().with_lut_entries(0);
        assert!(matches!(cfg.validate(), Err(NacuError::BadLutSize { .. })));
    }

    #[test]
    fn builder_methods_replace_fields() {
        let cfg = NacuConfig::paper_16bit()
            .with_lut_entries(64)
            .with_fit_method(FitMethod::Interpolate);
        assert_eq!(cfg.lut_entries, 64);
        assert_eq!(cfg.fit_method, FitMethod::Interpolate);
    }

    #[test]
    fn entry_scaling_grows_with_precision() {
        let narrow = NacuConfig::for_width(10).unwrap();
        let wide = NacuConfig::for_width(21).unwrap();
        assert!(wide.lut_entries > narrow.lut_entries);
    }
}
