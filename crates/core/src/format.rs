//! The paper's §III fixed-point dimensioning method (Eqs. 6–7).
//!
//! Given a word width `N`, the method finds the minimum integer bits `i_b`
//! such that the input range reaches σ's saturation region before the
//! output resolution `2^{-f_b}` can register any further change:
//!
//! ```text
//! e^{-In_max} < 2^{-f_b_out}
//!   ⇒ 2^{i_b} · (1 − 2^{1−N}) > ln(2) · f_b_out      (Eq. 7)
//! ```
//!
//! The equation has no closed form, so [`min_int_bits`] solves it case by
//! case exactly as the paper prescribes. For `N = 16` it yields `i_b = 4`,
//! `f_b = 11` — the `Q4.11` format used throughout the evaluation.

use nacu_fixed::QFormat;

/// The largest representable input, `In_max = 2^{i_b} − 2^{−f_b}` (Eq. 6).
#[must_use]
pub fn in_max(format: QFormat) -> f64 {
    format.max_value()
}

/// σ evaluated at `In_max` — how close to 1 the format lets σ get (Eq. 6).
#[must_use]
pub fn sigma_at_in_max(format: QFormat) -> f64 {
    1.0 / (1.0 + (-in_max(format)).exp())
}

/// Checks the Eq. 7 condition for an (input, output) format pair:
/// `2^{i_b_in} · (1 − 2^{1−N_in}) > ln(2) · f_b_out`.
#[must_use]
pub fn eq7_holds(input: QFormat, output: QFormat) -> bool {
    let lhs =
        2.0_f64.powi(input.int_bits() as i32) * (1.0 - 2.0_f64.powi(1 - input.total_bits() as i32));
    lhs > std::f64::consts::LN_2 * f64::from(output.frac_bits())
}

/// Solves Eq. 7 for a fixed word width `N` with identical input and output
/// formats (`i_b_in = i_b_out`, the common case §III recommends): the
/// smallest `i_b` whose induced `f_b = N − 1 − i_b` satisfies the
/// condition.
///
/// Returns `None` for `N < 3` (no room for both an integer and a
/// fractional bit).
#[must_use]
pub fn min_int_bits(total_bits: u32) -> Option<u32> {
    if total_bits < 3 {
        return None;
    }
    (1..total_bits - 1).find(|&ib| {
        let fb = total_bits - 1 - ib;
        let fmt = match QFormat::new(ib, fb) {
            Ok(f) => f,
            Err(_) => return false,
        };
        eq7_holds(fmt, fmt)
    })
}

/// The recommended format for a word width: minimal Eq. 7 integer bits,
/// all remaining bits fractional.
///
/// Returns `None` if the width cannot satisfy Eq. 7 (below 5 bits the
/// inequality has no solution with at least one fractional bit).
#[must_use]
pub fn recommended_format(total_bits: u32) -> Option<QFormat> {
    let ib = min_int_bits(total_bits)?;
    QFormat::new(ib, total_bits - 1 - ib).ok()
}

/// One row of the §III dimensioning table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FormatRow {
    /// Word width `N`.
    pub total_bits: u32,
    /// Minimal integer bits from Eq. 7.
    pub int_bits: u32,
    /// Induced fractional bits `N − 1 − i_b`.
    pub frac_bits: u32,
}

/// Solves Eq. 7 for every width in `widths`, skipping unsatisfiable ones.
#[must_use]
pub fn format_table(widths: std::ops::RangeInclusive<u32>) -> Vec<FormatRow> {
    widths
        .filter_map(|n| {
            let ib = min_int_bits(n)?;
            Some(FormatRow {
                total_bits: n,
                int_bits: ib,
                frac_bits: n - 1 - ib,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_bits_give_q4_11() {
        // §III: "to represent the full input range of σ, i_b needs a
        // minimum of 4 bits, and the remaining 11 bits can be allocated as
        // fractional bits".
        assert_eq!(min_int_bits(16), Some(4));
        assert_eq!(recommended_format(16), Some(QFormat::new(4, 11).unwrap()));
    }

    #[test]
    fn eq7_rejects_three_integer_bits_at_n16() {
        let q3_12 = QFormat::new(3, 12).unwrap();
        let q4_11 = QFormat::new(4, 11).unwrap();
        assert!(!eq7_holds(q3_12, q3_12)); // 8 < ln2·12 ≈ 8.32
        assert!(eq7_holds(q4_11, q4_11)); // 16 > ln2·11 ≈ 7.63
    }

    #[test]
    fn saturation_is_within_one_lsb_for_compliant_formats() {
        // The point of Eq. 7: at In_max, 1 − σ(In_max) < 2^{-f_b}.
        for n in 6..=24 {
            let fmt = recommended_format(n).unwrap();
            let gap = 1.0 - sigma_at_in_max(fmt);
            assert!(
                gap < fmt.resolution(),
                "N={n} {fmt}: gap {gap} vs lsb {}",
                fmt.resolution()
            );
        }
    }

    #[test]
    fn minimality_ib_minus_one_always_violates() {
        for n in 6..=24 {
            let ib = min_int_bits(n).unwrap();
            if ib > 1 {
                let fmt = QFormat::new(ib - 1, n - ib).unwrap();
                assert!(!eq7_holds(fmt, fmt), "N={n} i_b={}", ib - 1);
            }
        }
    }

    #[test]
    fn table_covers_related_work_widths() {
        let table = format_table(6..=21);
        assert_eq!(table.len(), 16);
        let n16 = table.iter().find(|r| r.total_bits == 16).unwrap();
        assert_eq!((n16.int_bits, n16.frac_bits), (4, 11));
        // Widths used in Fig. 6c–e comparisons.
        for n in [10, 14, 18, 21] {
            assert!(table.iter().any(|r| r.total_bits == n));
        }
    }

    #[test]
    fn tiny_widths_are_rejected() {
        assert_eq!(min_int_bits(2), None);
        // Width 3: Q1.1 → 2·(1-2^-2)=1.5 > ln2·1=0.69 ✓ so it's actually fine.
        assert_eq!(min_int_bits(3), Some(1));
    }

    #[test]
    fn int_bits_grow_slowly_with_width() {
        // i_b ~ log2(ln2 · f_b): doubling the width adds ~1 integer bit.
        let ib8 = min_int_bits(8).unwrap();
        let ib32 = min_int_bits(32).unwrap();
        assert!(ib32 >= ib8);
        assert!(ib32 - ib8 <= 3);
    }
}
