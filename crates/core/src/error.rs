use std::error::Error;
use std::fmt;

use nacu_fixed::FxError;

/// Errors produced when configuring or driving the NACU model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NacuError {
    /// The configured format violates the Eq. 7 dimensioning rule: the
    /// input range is too small for σ to saturate within one output LSB,
    /// so the unit cannot meet its own accuracy contract.
    FormatTooNarrow {
        /// Integer bits of the rejected format.
        int_bits: u32,
        /// Minimum integer bits Eq. 7 requires at this width.
        required: u32,
    },
    /// The coefficient LUT entry count is invalid (zero, or more entries
    /// than representable input codes).
    BadLutSize {
        /// The offending entry count.
        entries: usize,
    },
    /// Softmax was asked to normalise an empty vector.
    EmptyVector,
    /// An underlying fixed-point operation failed.
    Fixed(FxError),
}

impl fmt::Display for NacuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NacuError::FormatTooNarrow { int_bits, required } => write!(
                f,
                "format has {int_bits} integer bits but Eq. 7 requires at least {required}"
            ),
            NacuError::BadLutSize { entries } => {
                write!(f, "invalid coefficient LUT size: {entries}")
            }
            NacuError::EmptyVector => write!(f, "softmax of an empty vector"),
            NacuError::Fixed(e) => write!(f, "fixed-point failure: {e}"),
        }
    }
}

impl Error for NacuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NacuError::Fixed(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<FxError> for NacuError {
    fn from(e: FxError) -> Self {
        NacuError::Fixed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = NacuError::FormatTooNarrow {
            int_bits: 2,
            required: 4,
        };
        assert!(e.to_string().contains("Eq. 7"));
        assert!(NacuError::EmptyVector.to_string().contains("empty"));
    }

    #[test]
    fn fx_errors_chain_as_source() {
        let e = NacuError::from(FxError::DivideByZero);
        assert!(e.source().is_some());
    }
}
