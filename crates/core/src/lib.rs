//! Bit-accurate model of **NACU**, the reconfigurable Non-linear Arithmetic
//! Computation Unit of Baccelli et al. (DAC 2020).
//!
//! NACU computes the sigmoid, hyperbolic tangent, exponential and softmax
//! functions — plus plain multiply-accumulate — from one shared fixed-point
//! datapath. A single piecewise-linear coefficient LUT models the
//! **positive range of σ only**; everything else is derived with cheap
//! bit-level operations:
//!
//! * `tanh(x) = 2σ(2x) − 1` (Eq. 3) — an address shift plus coefficient
//!   scaling,
//! * `σ(−x) = 1 − σ(x)` and `tanh(−x) = −tanh(x)` (Eqs. 4–5) — the Fig. 3
//!   bias-derivation units in [`bias`],
//! * `e^x = 1/σ(−x) − 1` (Eq. 14) — the restoring [`divider`] and a
//!   decrementor,
//! * softmax (Eq. 13) — max-normalised exp plus the MAC and divider.
//!
//! The model operates on raw two's-complement codes throughout
//! ([`nacu_fixed::Fx`]), so its outputs are bit-identical to an RTL
//! simulation of the same micro-architecture; every error figure in the
//! paper's §VII can be measured directly against it.
//!
//! # Quickstart
//!
//! ```
//! use nacu::{Nacu, NacuConfig};
//! use nacu_fixed::{Fx, Rounding};
//!
//! # fn main() -> Result<(), nacu::NacuError> {
//! let nacu = Nacu::new(NacuConfig::paper_16bit())?;
//! let fmt = nacu.config().format;
//! let x = Fx::from_f64(1.0, fmt, Rounding::Nearest);
//! let y = nacu.sigmoid(x);
//! assert!((y.to_f64() - 0.731_058).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

pub mod bias;
pub mod bounds;
pub mod config;
pub mod datapath;
pub mod divider;
pub mod error_prop;
pub mod faults;
pub mod format;
pub mod pipeline;
pub mod table;
pub mod vcd;
pub mod verilog;

mod error;

pub use config::{Function, NacuConfig};
pub use datapath::Nacu;
pub use error::NacuError;
pub use table::{ResponseTable, ResponseTables};
