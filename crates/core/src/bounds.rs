//! Analytic error bounds for a NACU configuration.
//!
//! The measured errors of §VII decompose into quantities that can be
//! bounded *before* building anything: per-segment PWL fit error
//! (`|f″|·w²/16` for the minimax line), coefficient quantisation, and the
//! single output rounding. This module computes those bounds for any
//! [`NacuConfig`] and the tests verify the measured sweeps respect them —
//! the "formal method" companion to the paper's empirical §VII.

use nacu_fixed::QFormat;
use nacu_funcapprox::reference::RefFunc;

use crate::config::NacuConfig;
use crate::error_prop;

/// Error-budget decomposition for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBudget {
    /// Worst per-segment minimax fit error of the σ PWL.
    pub fit: f64,
    /// Error contribution of slope quantisation (after bias refit: the
    /// residual tilt across one segment).
    pub slope_quant: f64,
    /// Bias quantisation (half an LSB of the bias word).
    pub bias_quant: f64,
    /// Final output rounding (half an LSB of the output word).
    pub output_round: f64,
}

impl ErrorBudget {
    /// Total worst-case σ error bound (straight sum — the components are
    /// independent and can align).
    #[must_use]
    pub fn sigma_bound(&self) -> f64 {
        self.fit + self.slope_quant + self.bias_quant + self.output_round
    }

    /// Worst-case tanh bound: Eq. 3 doubles the σ error (`2σ(2x) − 1`),
    /// with its own final rounding instead of σ's.
    #[must_use]
    pub fn tanh_bound(&self) -> f64 {
        2.0 * (self.fit + self.slope_quant + self.bias_quant) + self.output_round
    }

    /// Worst-case exp bound via Eq. 16: 4× the σ error in the divider's
    /// working word, plus the divider truncation and output rounding.
    #[must_use]
    pub fn exp_bound(&self, work_fmt: QFormat, out_fmt: QFormat) -> f64 {
        let sigma_work = self.fit + self.slope_quant + self.bias_quant + work_fmt.resolution();
        error_prop::normalized_bound(sigma_work)
            + work_fmt.resolution() // divider truncation
            + out_fmt.resolution() / 2.0
    }
}

/// Computes the error budget of a configuration.
///
/// # Panics
///
/// Panics if the configuration does not validate (call
/// [`NacuConfig::validate`] first for a `Result`).
#[must_use]
pub fn budget(config: &NacuConfig) -> ErrorBudget {
    config.validate().expect("valid configuration");
    let fmt = config.format;
    let n = fmt.total_bits();
    let coef_fmt = QFormat::new(1, n - 2).expect("coef format");
    let bias_fmt = QFormat::new(2, n - 3).expect("bias format");
    let width = fmt.max_value() / config.lut_entries as f64;
    // Max |σ''| over x ≥ 0 is at x = ln(2 + √3) ≈ 1.317: |σ''| ≈ 0.0962.
    let max_curvature = sigma_second_derivative_max();
    let fit = max_curvature * width * width / 16.0;
    // Slope quantised to half an LSB of the coefficient word; after the
    // bias refit only the tilt across the segment half-width remains.
    let slope_quant = coef_fmt.resolution() / 2.0 * width / 2.0;
    let bias_quant = bias_fmt.resolution() / 2.0;
    let output_round = fmt.resolution() / 2.0;
    ErrorBudget {
        fit,
        slope_quant,
        bias_quant,
        output_round,
    }
}

/// `max_{x≥0} |σ''(x)|`, attained at `x = ln(2 + √3)`.
#[must_use]
pub fn sigma_second_derivative_max() -> f64 {
    let x = (2.0 + 3.0_f64.sqrt()).ln();
    RefFunc::Sigmoid.second_derivative(x).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::Nacu;
    use nacu_funcapprox::metrics;
    use nacu_funcapprox::reference;

    #[test]
    fn curvature_maximum_is_the_known_constant() {
        // |σ''|max = 1/(6√3) ≈ 0.09623.
        let expected = 1.0 / (6.0 * 3.0_f64.sqrt());
        assert!((sigma_second_derivative_max() - expected).abs() < 1e-12);
    }

    #[test]
    fn measured_sigma_error_respects_the_bound() {
        let config = NacuConfig::paper_16bit();
        let bound = budget(&config).sigma_bound();
        let nacu = Nacu::new(config).unwrap();
        let fmt = config.format;
        let report =
            metrics::sweep_raw_range(fmt, fmt.min_raw(), fmt.max_raw(), reference::sigmoid, |x| {
                nacu.sigmoid(x).to_f64()
            });
        assert!(
            report.max_error <= bound,
            "measured {} exceeds bound {bound}",
            report.max_error
        );
        // And the bound is not vacuous: within 4x of the measurement.
        assert!(bound <= 4.0 * report.max_error, "bound {bound} too loose");
    }

    #[test]
    fn measured_tanh_error_respects_the_bound() {
        let config = NacuConfig::paper_16bit();
        let bound = budget(&config).tanh_bound();
        let nacu = Nacu::new(config).unwrap();
        let fmt = config.format;
        let report = metrics::sweep_raw_range(
            fmt,
            fmt.min_raw(),
            fmt.max_raw(),
            |x| x.tanh(),
            |x| nacu.tanh(x).to_f64(),
        );
        assert!(
            report.max_error <= bound,
            "measured {} exceeds bound {bound}",
            report.max_error
        );
    }

    #[test]
    fn measured_exp_error_respects_the_eq16_bound() {
        let config = NacuConfig::paper_16bit();
        let fmt = config.format;
        let work = QFormat::new(2, fmt.total_bits() - 3).unwrap();
        let bound = budget(&config).exp_bound(work, fmt);
        let nacu = Nacu::new(config).unwrap();
        let report =
            metrics::sweep_raw_range(fmt, fmt.min_raw(), 0, |x| x.exp(), |x| nacu.exp(x).to_f64());
        assert!(
            report.max_error <= bound,
            "measured {} exceeds bound {bound}",
            report.max_error
        );
    }

    #[test]
    fn budget_shrinks_with_width_and_entries() {
        let wide = budget(&NacuConfig::for_width(20).unwrap());
        let narrow = budget(&NacuConfig::for_width(10).unwrap());
        assert!(wide.sigma_bound() < narrow.sigma_bound());
        let few = budget(&NacuConfig::paper_16bit().with_lut_entries(8));
        let many = budget(&NacuConfig::paper_16bit().with_lut_entries(128));
        assert!(many.fit < few.fit);
    }
}
