//! Cycle-accurate pipeline model of the NACU datapath.
//!
//! The functional model in [`crate::datapath`] answers *what* the hardware
//! computes; this module answers *when*. NACU is fully pipelined: one
//! operand can be issued per cycle and results emerge after the function's
//! latency (Table I: 3 cycles for σ/tanh, 8 for exp through the radix-4
//! divider; §VII.C's deep view of the e path fills in 24 cycles at
//! 3.75 ns = 90 ns and then streams one result per cycle).
//!
//! The model is a plain shift register of in-flight operations — exactly
//! the timing behaviour of a stall-free pipeline — and is what the
//! throughput benches and the softmax two-pass schedule are measured on.

use std::collections::VecDeque;

use nacu_fixed::Fx;

use crate::config::Function;
use crate::datapath::Nacu;

/// Latency in cycles for one result of `function` (Table I).
#[must_use]
pub fn latency_cycles(function: Function) -> u32 {
    match function {
        Function::Mac => 1,
        Function::Sigmoid | Function::Tanh => 3,
        Function::Exp | Function::Softmax => 8,
    }
}

/// Extra pipeline stages a *checked* unit (the `nacu-faults` detectors)
/// adds on top of the Table I latency.
///
/// The three detectors are wired off the main datapath so they cost one
/// shared compare stage, not one each:
///
/// * **LUT parity** is an XOR-reduction tree over the stored `(m₁, q)`
///   words, evaluated in parallel with the coefficient fetch — it fits
///   inside the existing lookup cycle and adds no latency of its own.
/// * **MAC residue** is a mod-3 shadow of the wide MAC; the tiny residue
///   adders track the main adder in parallel, but the equality compare
///   against the accumulator's pre-round word needs one extra stage.
/// * **The σ range/monotonicity sentinel** is a pair of magnitude
///   comparators on the output register, evaluated in the same added
///   stage as the residue compare.
///
/// Net effect: one extra cycle per result in checked mode, for every
/// function (they all traverse the shared MAC).
#[must_use]
pub fn detector_cycles(function: Function) -> u32 {
    let _ = function; // uniform across functions: one shared compare stage
    1
}

/// Table I latency of a checked (fault-detecting) unit:
/// [`latency_cycles`] plus the detectors' compare stage.
#[must_use]
pub fn checked_latency_cycles(function: Function) -> u32 {
    latency_cycles(function) + detector_cycles(function)
}

/// An in-flight operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct InFlight {
    function: Function,
    operand: Fx,
    /// Cycle at which the result reaches the output register.
    ready_at: u64,
}

/// A cycle-accurate wrapper around a [`Nacu`] instance.
///
/// # Example
///
/// ```
/// use nacu::{Nacu, NacuConfig, Function};
/// use nacu::pipeline::NacuPipeline;
/// use nacu_fixed::{Fx, Rounding};
///
/// # fn main() -> Result<(), nacu::NacuError> {
/// let nacu = Nacu::new(NacuConfig::paper_16bit())?;
/// let fmt = nacu.config().format;
/// let mut pipe = NacuPipeline::new(nacu);
/// pipe.issue(Function::Sigmoid, Fx::from_f64(1.0, fmt, Rounding::Nearest));
/// // Two idle cycles: nothing out yet (latency 3).
/// assert!(pipe.tick().is_none());
/// assert!(pipe.tick().is_none());
/// // Third cycle: the result retires.
/// assert!(pipe.tick().is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NacuPipeline {
    nacu: Nacu,
    cycle: u64,
    in_flight: VecDeque<InFlight>,
    issued: u64,
    retired: u64,
}

impl NacuPipeline {
    /// Wraps a functional instance.
    #[must_use]
    pub fn new(nacu: Nacu) -> Self {
        Self {
            nacu,
            cycle: 0,
            in_flight: VecDeque::new(),
            issued: 0,
            retired: 0,
        }
    }

    /// The wrapped functional model.
    #[must_use]
    pub fn nacu(&self) -> &Nacu {
        &self.nacu
    }

    /// The current cycle count.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Operations issued / retired so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.issued, self.retired)
    }

    /// Issues one operation in the current cycle (one issue slot per
    /// cycle, as in the hardware).
    ///
    /// # Panics
    ///
    /// Panics on [`Function::Softmax`]/[`Function::Mac`] (vector and
    /// stateful modes are scheduled by their own drivers) and on a second
    /// issue in the same cycle.
    pub fn issue(&mut self, function: Function, operand: Fx) {
        assert!(
            !matches!(function, Function::Softmax | Function::Mac),
            "issue scalar functions only; softmax/mac have dedicated drivers"
        );
        assert!(
            self.in_flight.back().is_none_or(|op| op.ready_at
                != self.cycle + u64::from(latency_cycles(function))
                || op.ready_at < self.cycle),
            "one issue per cycle"
        );
        self.in_flight.push_back(InFlight {
            function,
            operand,
            ready_at: self.cycle + u64::from(latency_cycles(function)),
        });
        self.issued += 1;
    }

    /// Advances one clock cycle; returns the result retiring this cycle,
    /// if any.
    pub fn tick(&mut self) -> Option<Fx> {
        self.cycle += 1;
        if let Some(front) = self.in_flight.front() {
            if front.ready_at <= self.cycle {
                let op = self.in_flight.pop_front().expect("front exists");
                self.retired += 1;
                return Some(self.nacu.compute(op.function, op.operand));
            }
        }
        None
    }

    /// Drains the pipeline, returning all remaining results in order.
    pub fn drain(&mut self) -> Vec<Fx> {
        let mut out = Vec::new();
        while !self.in_flight.is_empty() {
            if let Some(r) = self.tick() {
                out.push(r);
            }
        }
        out
    }

    /// Streams a whole batch through the pipeline and reports the cycle
    /// count: `latency + n − 1` for a stall-free pipeline.
    pub fn run_batch(&mut self, function: Function, operands: &[Fx]) -> (Vec<Fx>, u64) {
        let start = self.cycle;
        let mut results = Vec::with_capacity(operands.len());
        for &x in operands {
            self.issue(function, x);
            if let Some(r) = self.tick() {
                results.push(r);
            }
        }
        results.extend(self.drain());
        (results, self.cycle - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NacuConfig;
    use nacu_fixed::Rounding;

    fn pipe() -> NacuPipeline {
        NacuPipeline::new(Nacu::new(NacuConfig::paper_16bit()).unwrap())
    }

    fn operands(pipe: &NacuPipeline, n: usize) -> Vec<Fx> {
        let fmt = pipe.nacu().config().format;
        (0..n)
            .map(|i| Fx::from_f64(i as f64 * 0.1 - 0.5, fmt, Rounding::Nearest))
            .collect()
    }

    #[test]
    fn latencies_match_table1() {
        assert_eq!(latency_cycles(Function::Sigmoid), 3);
        assert_eq!(latency_cycles(Function::Tanh), 3);
        assert_eq!(latency_cycles(Function::Exp), 8);
        assert_eq!(latency_cycles(Function::Mac), 1);
    }

    #[test]
    fn checked_latency_adds_one_compare_stage() {
        for f in Function::all() {
            assert_eq!(checked_latency_cycles(f), latency_cycles(f) + 1);
            assert_eq!(detector_cycles(f), 1);
        }
    }

    #[test]
    fn single_sigmoid_takes_three_cycles() {
        let mut p = pipe();
        let x = operands(&p, 1)[0];
        p.issue(Function::Sigmoid, x);
        assert!(p.tick().is_none());
        assert!(p.tick().is_none());
        let r = p.tick().expect("result after 3 cycles");
        assert_eq!(r, p.nacu().sigmoid(x));
    }

    #[test]
    fn batch_throughput_is_one_per_cycle() {
        let mut p = pipe();
        let xs = operands(&p, 100);
        let (results, cycles) = p.run_batch(Function::Tanh, &xs);
        assert_eq!(results.len(), 100);
        // Stall-free pipeline: n + latency − 1 cycles.
        assert_eq!(cycles, 100 + 3 - 1);
    }

    #[test]
    fn exp_batch_pays_the_divider_latency_once() {
        let mut p = pipe();
        let fmt = p.nacu().config().format;
        let xs: Vec<Fx> = (0..50)
            .map(|i| Fx::from_f64(-0.1 * f64::from(i), fmt, Rounding::Nearest))
            .collect();
        let (results, cycles) = p.run_batch(Function::Exp, &xs);
        assert_eq!(results.len(), 50);
        assert_eq!(cycles, 50 + 8 - 1);
    }

    #[test]
    fn results_retire_in_issue_order() {
        let mut p = pipe();
        let xs = operands(&p, 10);
        let (results, _) = p.run_batch(Function::Sigmoid, &xs);
        let direct: Vec<Fx> = xs.iter().map(|&x| p.nacu().sigmoid(x)).collect();
        assert_eq!(results, direct);
    }

    #[test]
    fn stats_track_issue_and_retire() {
        let mut p = pipe();
        let xs = operands(&p, 5);
        p.run_batch(Function::Sigmoid, &xs);
        assert_eq!(p.stats(), (5, 5));
    }

    #[test]
    #[should_panic(expected = "dedicated drivers")]
    fn softmax_issue_panics() {
        let mut p = pipe();
        let x = operands(&p, 1)[0];
        p.issue(Function::Softmax, x);
    }
}
