//! Error propagation from σ to the exponential (§IV.B, Eqs. 15–16).
//!
//! `e^x = 1/(1 − σ(x)) − 1` amplifies a σ error `δσ` by the coefficient
//! `1/(1 − σ)²`, which diverges as σ saturates. Max-normalising the exp
//! input (Eq. 13) confines it to `[−2^{i_b}, 0]`, hence `σ(x − x_max) ∈
//! [0, 0.5]`, hence the amplification is bounded by
//! `1/(1 − 0.5)² = 4` (Eq. 16).
//!
//! Note the change of variable: the *datapath* divides by `σ(−x) ∈
//! [0.5, 1]`, which is `1 − σ(x)`; the bound derived on `σ(x) ≤ 0.5` is the
//! same statement seen from Eq. 14's first form.

/// The Eq. 15 error-propagation coefficient `∂e/∂σ = 1/(1 − σ)²`.
///
/// # Panics
///
/// Panics if `sigma >= 1` (the coefficient diverges — exactly the
/// instability Eq. 13's normalisation removes).
#[must_use]
pub fn propagation_coefficient(sigma: f64) -> f64 {
    assert!(sigma < 1.0, "propagation coefficient diverges at σ = 1");
    (1.0 - sigma).powi(-2)
}

/// The Eq. 15 propagated uncertainty `δe = |∂e/∂σ| · δσ`.
#[must_use]
pub fn propagated_error(sigma: f64, delta_sigma: f64) -> f64 {
    propagation_coefficient(sigma) * delta_sigma.abs()
}

/// The Eq. 16 worst-case bound for a max-normalised input: `δe ≤ 4·δσ`.
#[must_use]
pub fn normalized_bound(delta_sigma: f64) -> f64 {
    4.0 * delta_sigma.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nacu_funcapprox::reference::sigmoid;

    #[test]
    fn coefficient_matches_eq16_at_the_boundary() {
        assert_eq!(propagation_coefficient(0.5), 4.0);
        assert_eq!(propagation_coefficient(0.0), 1.0);
    }

    #[test]
    fn coefficient_diverges_towards_saturation() {
        assert!(propagation_coefficient(0.9) > 99.0);
        assert!(propagation_coefficient(0.99) > 9_999.0);
    }

    #[test]
    fn normalised_inputs_keep_sigma_below_half() {
        // x' = x − x_max ≤ 0 ⇒ σ(x') ≤ 0.5 ⇒ coefficient ≤ 4.
        for x in [-16.0, -3.0, -0.5, 0.0] {
            let s = sigmoid(x);
            assert!(s <= 0.5 + 1e-12);
            assert!(propagation_coefficient(s) <= 4.0 + 1e-9);
        }
    }

    #[test]
    fn bound_dominates_the_exact_propagation_on_the_normalised_range() {
        let delta = 1e-3;
        for x in [-8.0, -2.0, -0.25, 0.0] {
            let s = sigmoid(x);
            assert!(propagated_error(s, delta) <= normalized_bound(delta) + 1e-12);
        }
    }

    #[test]
    fn first_order_model_predicts_actual_exp_perturbation() {
        // Perturb σ by δ and compare the actual change in e = 1/(1−σ) − 1
        // with the Eq. 15 linearisation.
        let delta = 1e-6;
        for x in [-4.0_f64, -1.0, -0.1] {
            let s = sigmoid(x);
            let e = |sig: f64| (1.0 - sig).recip() - 1.0;
            let actual = (e(s + delta) - e(s)).abs();
            let predicted = propagated_error(s, delta);
            assert!(
                (actual - predicted).abs() / predicted < 1e-3,
                "x={x}: actual {actual} vs predicted {predicted}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "diverges")]
    fn saturated_sigma_panics() {
        let _ = propagation_coefficient(1.0);
    }
}
