//! The Fig. 3 bias-derivation units.
//!
//! §V.A observes that the only operations NACU ever applies to the σ bias
//! `q ∈ [0.5, 1]` are `1 − q`, `2q − 1` and `1 − 2q`, and that over those
//! restricted ranges each reduces to pure bit manipulation — no
//! carry-propagating subtractor needed:
//!
//! * **Fig. 3a** (`1 − q`): integer bits become zero, fractional bits are
//!   two's-complemented;
//! * **Fig. 3b** (`2q − 1`, operand in `[1, 2]`): fractional bits pass
//!   through, integer bit `a₁` propagates into `a₀`;
//! * **Fig. 3c** (`1 + a` with `a = −2q ∈ [−2, −1]`): fractional bits pass
//!   through, all integer (and sign) bits take the inversion of `a₀`.
//!
//! The same Fig. 3b/3c structure implements the exp path's decrementor
//! (`σ′ − 1` with `σ′ ∈ [1, 2]`, §V.B).
//!
//! All functions here operate on **raw codes** with `frac_bits` fractional
//! bits, exactly mirroring the RTL, and every unit is proven equivalent to
//! the arithmetic operation by exhaustive tests over its legal input range.

/// `1 − q` for `q ∈ [0.5, 1]` (Fig. 3a).
///
/// The integer bits of the result are zero; the fractional bits are the
/// two's complement of the input's fractional bits.
///
/// Like the silicon it models, the function is **total**: an operand
/// outside the Fig. 3a precondition (possible only through a faulted ROM,
/// see [`crate::faults`]) still produces exactly the bit pattern the
/// circuit would emit — it equals `1 − q` only inside `[0.5, 1]`.
#[must_use]
pub fn one_minus_q(q_raw: i64, frac_bits: u32) -> i64 {
    let one = 1_i64 << frac_bits;
    let mask = one - 1;
    let frac = q_raw & mask;
    // Two's complement of the fractional field, kept inside the field.
    (-frac) & mask
}

/// `a − 1` for `a ∈ [1, 2]` (Fig. 3b) — used both for the tanh positive
/// bias `2q − 1` and for the exp decrementor `σ′ − 1`.
///
/// Fractional bits pass through; integer bit `a₁` is propagated into `a₀`.
/// Total like the circuit: outside `[1, 2]` the result is the wires'
/// output, not `a − 1`.
#[must_use]
pub fn decrement_unit(a_raw: i64, frac_bits: u32) -> i64 {
    let one = 1_i64 << frac_bits;
    let mask = one - 1;
    let frac = a_raw & mask;
    let a1 = (a_raw >> (frac_bits + 1)) & 1;
    (a1 << frac_bits) | frac
}

/// `1 + a` for `a ∈ [−2, −1]` (Fig. 3c) — the tanh negative bias
/// `1 − 2q` with `a = −2q`.
///
/// Fractional bits pass through; every integer (and sign) bit receives the
/// inversion of the operand's integer LSB `a₀`. Total like the circuit:
/// outside `[−2, −1]` the result is the wires' output, not `1 + a`.
#[must_use]
pub fn increment_negative_unit(a_raw: i64, frac_bits: u32) -> i64 {
    let one = 1_i64 << frac_bits;
    let mask = one - 1;
    let frac = a_raw & mask;
    let a0 = (a_raw >> frac_bits) & 1;
    if a0 == 1 {
        // a = −1 exactly (frac is zero): result is 0.
        frac
    } else {
        // Integer/sign field all ones: −1 plus the fractional part.
        (-1_i64 << frac_bits) | frac
    }
}

/// Convenience: `2q − 1` for `q ∈ [0.5, 1]` (applies the doubling shift,
/// then Fig. 3b).
#[must_use]
pub fn two_q_minus_one(q_raw: i64, frac_bits: u32) -> i64 {
    decrement_unit(q_raw << 1, frac_bits)
}

/// Convenience: `1 − 2q` for `q ∈ [0.5, 1]` (doubling shift, two's
/// complement, then Fig. 3c).
#[must_use]
pub fn one_minus_two_q(q_raw: i64, frac_bits: u32) -> i64 {
    increment_negative_unit(-(q_raw << 1), frac_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively checks a bias unit against plain arithmetic over its
    /// whole legal operand range, for every fractional width up to 13.
    fn exhaustive<F: Fn(i64, u32) -> i64, G: Fn(i64, i64) -> i64>(
        unit: F,
        arithmetic: G,
        range: fn(i64) -> (i64, i64),
    ) {
        for f in 1..=13u32 {
            let one = 1_i64 << f;
            let (lo, hi) = range(one);
            for raw in lo..=hi {
                assert_eq!(
                    unit(raw, f),
                    arithmetic(raw, one),
                    "f={f} raw={raw} ({})",
                    raw as f64 / one as f64
                );
            }
        }
    }

    #[test]
    fn fig3a_equals_subtraction_exhaustively() {
        exhaustive(one_minus_q, |raw, one| one - raw, |one| (one / 2, one));
    }

    #[test]
    fn fig3b_equals_decrement_exhaustively() {
        exhaustive(decrement_unit, |raw, one| raw - one, |one| (one, 2 * one));
    }

    #[test]
    fn fig3c_equals_increment_exhaustively() {
        exhaustive(
            increment_negative_unit,
            |raw, one| one + raw,
            |one| (-2 * one, -one),
        );
    }

    #[test]
    fn derived_tanh_biases_match_arithmetic() {
        let f = 13u32;
        let one = 1_i64 << f;
        for q_raw in one / 2..=one {
            assert_eq!(two_q_minus_one(q_raw, f), 2 * q_raw - one, "q={q_raw}");
            assert_eq!(one_minus_two_q(q_raw, f), one - 2 * q_raw, "q={q_raw}");
        }
    }

    #[test]
    fn paper_walkthrough_values() {
        // q = 0.75 at f = 4: raw 12, one = 16.
        assert_eq!(one_minus_q(12, 4), 4); // 1 - 0.75 = 0.25
        assert_eq!(two_q_minus_one(12, 4), 8); // 2·0.75 - 1 = 0.5
        assert_eq!(one_minus_two_q(12, 4), -8); // 1 - 1.5 = -0.5
                                                // Saturation entry q = 1: raw 16.
        assert_eq!(one_minus_q(16, 4), 0);
        assert_eq!(two_q_minus_one(16, 4), 16); // 2 - 1 = 1
        assert_eq!(one_minus_two_q(16, 4), -16); // 1 - 2 = -1
    }

    #[test]
    fn decrement_unit_serves_the_exp_path() {
        // σ' = 1/σ(−x) ∈ [1, 2]; σ' − 1 = e^x (§V.B). Example σ' = 1.5.
        let f = 11u32;
        let sigma_prime = (1.5 * f64::from(1 << f)) as i64;
        assert_eq!(decrement_unit(sigma_prime, f), (1 << f) / 2);
    }

    #[test]
    fn units_are_total_outside_their_preconditions() {
        // Silicon has no asserts: an out-of-range operand (a faulted ROM
        // word) still yields a well-defined bit pattern. The value is the
        // circuit's, not the arithmetic identity's.
        for f in [4u32, 11, 13] {
            let one = 1_i64 << f;
            for raw in [-3 * one, -1, 0, 3, 3 * one] {
                let _ = one_minus_q(raw, f);
                let _ = decrement_unit(raw, f);
                let _ = increment_negative_unit(raw, f);
            }
        }
        // Spot check: the Fig. 3a trick on q = 0.1875 (raw 3, f = 4)
        // emits the two's complement of the fraction — 13/16 — which is
        // NOT 1 − 0.1875; the identity only holds inside [0.5, 1].
        assert_eq!(one_minus_q(3, 4), 13);
    }
}
