//! The NACU datapath (Fig. 2), bit-accurately.
//!
//! One coefficient LUT holds `(m₁, q)` pairs for the **positive range of σ
//! only**. Everything else is derived exactly as the hardware does it:
//!
//! | function | address        | slope          | bias                  |
//! |----------|----------------|----------------|-----------------------|
//! | σ, x ≥ 0 | `x`            | `m₁`           | `q`                   |
//! | σ, x < 0 | `|x|`          | `−m₁`          | `1 − q` (Fig. 3a)     |
//! | tanh, x ≥ 0 | `2x`        | `4·m₁` (shift) | `2q − 1` (Fig. 3b)    |
//! | tanh, x < 0 | `2|x|`      | `−4·m₁`        | `1 − 2q` (Fig. 3c)    |
//! | e^x, x ≤ 0  | `|x|`       | σ path, then `1/σ` (divider) `− 1` (Fig. 3b) |
//!
//! The multiply-add runs at full internal precision and rounds **once**
//! into the output word, as the widened MAC of Fig. 2 does. The exp path
//! keeps σ in a `Q2.(N−3)` working word (the divider's operand register)
//! so the division sees more fractional bits than the output format
//! carries — the reason the measured exp error stays within the Eq. 16
//! bound of 4·δσ.

use nacu_fixed::{Fx, Overflow, QFormat, Rounding};
use nacu_funcapprox::reference::RefFunc;
use nacu_funcapprox::segment::{self, Segment};

use crate::bias;
use crate::config::{Function, NacuConfig};
use crate::divider;
use crate::NacuError;

/// One coefficient-LUT record: raw `(m₁, q)` codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CoeffEntry {
    /// Slope in the coefficient format `Q1.(N−2)`.
    slope_raw: i64,
    /// Bias in the bias format `Q2.(N−3)`.
    bias_raw: i64,
}

/// A configured NACU instance.
///
/// Construction fits and quantises the σ coefficient LUT; evaluation is
/// pure integer arithmetic on raw codes. The struct is immutable and
/// `Send + Sync`, so one instance can serve a whole simulated fabric.
#[derive(Debug, Clone)]
pub struct Nacu {
    config: NacuConfig,
    entries: Vec<CoeffEntry>,
    /// Raw-code boundaries of the LUT segments (ascending, positive).
    bounds: Vec<i64>,
    coef_fmt: QFormat,
    bias_fmt: QFormat,
    /// Divider working format `Q2.(N−3)` (holds σ ∈ [0.5, 1], σ′ ∈ [1, 2]).
    work_fmt: QFormat,
}

impl Nacu {
    /// Builds a NACU instance: validates the configuration, fits the σ PWL
    /// segments over `[0, In_max]` and quantises the coefficients.
    ///
    /// # Errors
    ///
    /// Propagates [`NacuConfig::validate`] failures.
    pub fn new(config: NacuConfig) -> Result<Self, NacuError> {
        config.validate()?;
        let fmt = config.format;
        let n = fmt.total_bits();
        let coef_fmt = QFormat::new(1, n - 2).expect("coef format");
        let bias_fmt = QFormat::new(2, n - 3).expect("bias format");
        let work_fmt = bias_fmt;
        // Uniform segment boundaries in raw input codes over [0, max_raw].
        let entries_n = config.lut_entries as i64;
        let span = fmt.max_raw() + 1;
        let mut bounds: Vec<i64> = (0..=entries_n).map(|i| i * span / entries_n).collect();
        bounds.dedup();
        let res = fmt.resolution();
        let entries = bounds
            .windows(2)
            .map(|w| {
                let seg = Segment::new(w[0] as f64 * res, w[1] as f64 * res);
                let fit = segment::fit_line(RefFunc::Sigmoid, seg, config.fit_method);
                let slope = Fx::from_f64(fit.slope, coef_fmt, Rounding::Nearest);
                let bias_val = segment::refit_bias(RefFunc::Sigmoid, seg, slope.to_f64());
                let bias = Fx::from_f64(bias_val, bias_fmt, Rounding::Nearest);
                CoeffEntry {
                    slope_raw: slope.raw(),
                    bias_raw: bias.raw(),
                }
            })
            .collect();
        Ok(Self {
            config,
            entries,
            bounds,
            coef_fmt,
            bias_fmt,
            work_fmt,
        })
    }

    /// Builds an instance with **explicit ROM contents** instead of fitted
    /// ones: `coefficients[i]` is the `(m₁, q)` raw pair of segment `i`.
    /// Used by the fault-injection tooling ([`crate::faults`]) and by
    /// round-trip tests against externally authored ROMs.
    ///
    /// # Errors
    ///
    /// Propagates [`NacuConfig::validate`] failures, and returns
    /// [`NacuError::BadLutSize`] if the coefficient count does not match
    /// `config.lut_entries`.
    pub fn from_coefficients(
        config: NacuConfig,
        coefficients: &[(i64, i64)],
    ) -> Result<Self, NacuError> {
        let mut nacu = Self::new(config)?;
        if coefficients.len() != nacu.entries.len() {
            return Err(NacuError::BadLutSize {
                entries: coefficients.len(),
            });
        }
        for (slot, &(slope_raw, bias_raw)) in nacu.entries.iter_mut().zip(coefficients) {
            *slot = CoeffEntry {
                slope_raw: nacu.coef_fmt.saturate_raw(slope_raw as i128),
                bias_raw: nacu.bias_fmt.saturate_raw(bias_raw as i128),
            };
        }
        Ok(nacu)
    }

    /// The configuration this instance was built with.
    #[must_use]
    pub fn config(&self) -> &NacuConfig {
        &self.config
    }

    /// Number of coefficient-LUT entries actually stored (may be below the
    /// requested count if segments collapsed at the input resolution).
    #[must_use]
    pub fn lut_entries(&self) -> usize {
        self.entries.len()
    }

    /// The stored coefficient records as `(m₁, q)` raw-code pairs — the
    /// exact ROM contents (used by the Verilog exporter and inspection
    /// tooling).
    #[must_use]
    pub fn coefficients(&self) -> Vec<(i64, i64)> {
        self.entries
            .iter()
            .map(|e| (e.slope_raw, e.bias_raw))
            .collect()
    }

    /// The coefficient (slope) storage format, `Q1.(N−2)`.
    #[must_use]
    pub fn coef_format(&self) -> QFormat {
        self.coef_fmt
    }

    /// The bias storage format, `Q2.(N−3)` — the word the Fig. 3 units
    /// operate on.
    #[must_use]
    pub fn bias_format(&self) -> QFormat {
        self.bias_fmt
    }

    /// The divider/exp working format `Q2.(N−3)` — the word σ is kept in
    /// on the exp path before the reciprocal.
    #[must_use]
    pub fn work_format(&self) -> QFormat {
        self.work_fmt
    }

    /// Raw-code segment boundaries of the σ LUT (ascending, positive;
    /// `bounds[i]..bounds[i+1]` is segment `i`). Together with
    /// [`Nacu::lookup_index`] and [`Nacu::coefficients`] this exposes the
    /// address-decode net to external checkers and fault injectors
    /// (`nacu-faults`).
    #[must_use]
    pub fn segment_bounds(&self) -> &[i64] {
        &self.bounds
    }

    /// The LUT entry index a positive raw address decodes to — the
    /// address net of Fig. 2, exposed as an injection/observation hook.
    #[must_use]
    pub fn lookup_index(&self, mag_raw: i64) -> usize {
        let hi = self.bounds[self.bounds.len() - 1] - 1;
        let raw = mag_raw.clamp(0, hi);
        let idx = self.bounds[1..self.bounds.len() - 1].partition_point(|&b| b <= raw);
        idx.min(self.entries.len() - 1)
    }

    /// Magnitude of an input code as the hardware's absolute-value stage
    /// produces it (saturating the asymmetric two's-complement minimum) —
    /// the operand net feeding the LUT address and the MAC.
    #[must_use]
    pub fn magnitude_raw(&self, x: Fx) -> i64 {
        self.magnitude(x)
    }

    /// LUT lookup by positive raw address (clamped into range).
    fn lookup(&self, mag_raw: i64) -> CoeffEntry {
        self.entries[self.lookup_index(mag_raw)]
    }

    /// Magnitude of an input code, saturating the asymmetric minimum.
    fn magnitude(&self, x: Fx) -> i64 {
        if x.raw() < 0 {
            (-(x.raw() as i128)).min(self.config.format.max_raw() as i128) as i64
        } else {
            x.raw()
        }
    }

    /// The shared multiply-add: `slope·mag + bias`, computed at the
    /// internal scale and rounded once into `out_frac` fractional bits.
    fn mul_add(&self, slope_raw: i64, mag_raw: i64, bias_raw: i64, out_frac: u32) -> i64 {
        let internal_f = self.coef_fmt.frac_bits() + self.config.format.frac_bits();
        let product = slope_raw as i128 * mag_raw as i128;
        let bias_shift = internal_f - self.bias_fmt.frac_bits();
        let bias = (bias_raw as i128) << bias_shift;
        let sum = product + bias;
        Rounding::Nearest.shift_right(sum, internal_f - out_frac) as i64
    }

    /// Computes σ(x) over the full input range (Eqs. 8–9).
    #[must_use]
    pub fn sigmoid(&self, x: Fx) -> Fx {
        self.assert_format(x);
        let raw = self.sigmoid_raw(x, self.config.format.frac_bits());
        Fx::from_raw_saturating(
            self.config.format.saturate_raw(raw as i128),
            self.config.format,
        )
    }

    /// σ at an arbitrary output scale (the exp path asks for the working
    /// format's extra fractional bits).
    fn sigmoid_raw(&self, x: Fx, out_frac: u32) -> i64 {
        let mag = self.magnitude(x);
        let entry = self.lookup(mag);
        if x.raw() >= 0 {
            self.mul_add(entry.slope_raw, mag, entry.bias_raw, out_frac)
        } else {
            let bias = bias::one_minus_q(entry.bias_raw, self.bias_fmt.frac_bits());
            self.mul_add(-entry.slope_raw, mag, bias, out_frac)
        }
    }

    /// Computes tanh(x) over the full input range (Eqs. 10–11).
    #[must_use]
    pub fn tanh(&self, x: Fx) -> Fx {
        self.assert_format(x);
        let mag = self.magnitude(x);
        // Address the σ LUT at 2x (Eq. 3's stretch), saturating.
        let address = (2 * mag).min(self.config.format.max_raw());
        let entry = self.lookup(address);
        // Slope scaling 2^{i+1}·m₁ = 4·m₁: arithmetic left shift by 2,
        // saturating in the coefficient word.
        let slope4 = self.coef_fmt.saturate_raw((entry.slope_raw as i128) << 2);
        let f = self.bias_fmt.frac_bits();
        let out_frac = self.config.format.frac_bits();
        let raw = if x.raw() >= 0 {
            let bias = bias::two_q_minus_one(entry.bias_raw, f);
            self.mul_add(slope4, mag, bias, out_frac)
        } else {
            let bias = bias::one_minus_two_q(entry.bias_raw, f);
            self.mul_add(-slope4, mag, bias, out_frac)
        };
        Fx::from_raw_saturating(
            self.config.format.saturate_raw(raw as i128),
            self.config.format,
        )
    }

    /// Computes `e^x` for a non-positive (max-normalised) input via Eq. 14:
    /// `σ(−x)` → pipelined divider → Fig. 3b decrementor.
    ///
    /// Positive inputs clamp to 0 (softmax normalisation guarantees the
    /// operand is never positive; the clamp mirrors the address saturation
    /// a real unit performs).
    #[must_use]
    pub fn exp(&self, x: Fx) -> Fx {
        self.assert_format(x);
        let clamped = if x.raw() > 0 { Fx::zero(x.format()) } else { x };
        // σ(−x) = σ(|x|) ∈ [0.5, 1], kept in the divider's working word.
        let wf = self.work_fmt.frac_bits();
        let neg = Fx::from_raw_saturating(-clamped.raw(), self.config.format);
        let sigma_raw = self
            .work_fmt
            .saturate_raw(self.sigmoid_raw(neg, wf) as i128);
        // σ quantised below 0.5 can only happen through rounding at the
        // segment edge; the divider operand clamps into [0.5, 1].
        let one = 1_i64 << wf;
        let sigma_raw = sigma_raw.clamp(one / 2, one);
        let sigma = Fx::from_raw_saturating(sigma_raw, self.work_fmt);
        let sigma_prime = divider::reciprocal(sigma).expect("σ ≥ 0.5 is non-zero");
        // σ' ∈ [1, 2]: the Fig. 3b structure decrements it to e^x ∈ [0, 1].
        let sp = sigma_prime.raw().clamp(one, 2 * one);
        let e_raw = bias::decrement_unit(sp, wf);
        Fx::from_raw_saturating(e_raw, self.work_fmt).resize(
            self.config.format,
            Rounding::Nearest,
            Overflow::Saturate,
        )
    }

    /// Computes the max-normalised softmax (Eq. 13) of a vector: one pass
    /// accumulating the exp sum in the MAC, one pass normalising each
    /// element through the shared divider.
    ///
    /// # Errors
    ///
    /// Returns [`NacuError::EmptyVector`] for an empty input, or
    /// [`NacuError::Fixed`] if the inputs carry mixed formats.
    pub fn softmax(&self, inputs: &[Fx]) -> Result<Vec<Fx>, NacuError> {
        self.softmax_with(inputs, |x| self.exp(x))
    }

    /// [`Nacu::softmax`] with a pluggable exp stage: `exp_fn` must map a
    /// non-positive operand in the configured format to `e^x` in the same
    /// format, exactly as [`Nacu::exp`] does. The max-normalisation, the
    /// widened MAC accumulation and the pass-2 restoring divider are this
    /// datapath's own either way.
    ///
    /// This is the hook the serving engine's response-table fast path
    /// uses ([`crate::table::ResponseTables`]): the exp stage comes from
    /// an exhaustively datapath-equal table, so the whole softmax stays
    /// bit-identical — the working-format resize after `exp_fn` is exact
    /// for any value in `[0, 1]`, which is the entire exp range.
    ///
    /// # Errors
    ///
    /// As [`Nacu::softmax`].
    pub fn softmax_with<F>(&self, inputs: &[Fx], exp_fn: F) -> Result<Vec<Fx>, NacuError>
    where
        F: Fn(Fx) -> Fx,
    {
        if inputs.is_empty() {
            return Err(NacuError::EmptyVector);
        }
        for x in inputs {
            if x.format() != self.config.format {
                return Err(NacuError::Fixed(nacu_fixed::FxError::FormatMismatch {
                    lhs: x.format(),
                    rhs: self.config.format,
                }));
            }
        }
        let max_raw = inputs.iter().map(Fx::raw).max().expect("non-empty");
        let max = Fx::from_raw_saturating(max_raw, self.config.format);
        // Pass 1: e^{x_i - x_max} in the working word; MAC accumulates the
        // denominator in a widened accumulator (Fig. 2's feedback path).
        let wf = self.work_fmt.frac_bits();
        let acc_fmt = QFormat::new(self.config.format.int_bits() + 7, wf).expect("acc format");
        let mut denom = Fx::zero(acc_fmt);
        let mut exps = Vec::with_capacity(inputs.len());
        for &x in inputs {
            let diff = x.saturating_sub(max)?;
            let e = exp_fn(diff);
            // Keep the full working precision for normalisation.
            let e_work = e.resize(self.work_fmt, Rounding::Nearest, Overflow::Saturate);
            exps.push(e_work);
            denom = denom.saturating_add(e_work.resize(
                acc_fmt,
                Rounding::Nearest,
                Overflow::Saturate,
            ))?;
        }
        // Pass 2: scale each exp by the common normalisation factor.
        let mut out = Vec::with_capacity(inputs.len());
        for e in exps {
            let q =
                divider::restoring_divide(e.raw(), denom.raw(), wf).map_err(NacuError::Fixed)?;
            let q_work =
                Fx::from_raw_saturating(self.work_fmt.saturate_raw(q as i128), self.work_fmt);
            out.push(q_work.resize(self.config.format, Rounding::Nearest, Overflow::Saturate));
        }
        Ok(out)
    }

    /// Single-input dispatch over the configured functions.
    ///
    /// # Panics
    ///
    /// Panics if called with [`Function::Softmax`] or [`Function::Mac`],
    /// which need a vector/accumulator — use [`Nacu::softmax`] /
    /// [`MacAccumulator`].
    #[must_use]
    pub fn compute(&self, function: Function, x: Fx) -> Fx {
        match function {
            Function::Sigmoid => self.sigmoid(x),
            Function::Tanh => self.tanh(x),
            Function::Exp => self.exp(x),
            Function::Softmax | Function::Mac => {
                panic!("{function} needs the vector/accumulator interface")
            }
        }
    }

    fn assert_format(&self, x: Fx) {
        assert_eq!(
            x.format(),
            self.config.format,
            "input format {} does not match the configured {}",
            x.format(),
            self.config.format
        );
    }
}

/// The MAC mode of Fig. 2: multiply-accumulate with the widened adder's
/// feedback register (used for convolution sums before the non-linearity
/// and for the softmax denominator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacAccumulator {
    acc: Fx,
}

impl MacAccumulator {
    /// A cleared accumulator in the datapath format.
    #[must_use]
    pub fn new(format: QFormat) -> Self {
        Self {
            acc: Fx::zero(format),
        }
    }

    /// One MAC step: `acc ← acc + a·b` (saturating, round-to-nearest).
    ///
    /// # Panics
    ///
    /// Panics if operand formats differ from the accumulator's.
    pub fn step(&mut self, a: Fx, b: Fx) {
        self.acc += a * b;
    }

    /// The accumulated value.
    #[must_use]
    pub fn value(&self) -> Fx {
        self.acc
    }

    /// Clears the accumulator.
    pub fn clear(&mut self) {
        self.acc = Fx::zero(self.acc.format());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nacu_funcapprox::metrics;

    fn paper() -> Nacu {
        Nacu::new(NacuConfig::paper_16bit()).expect("paper config builds")
    }

    fn fx(nacu: &Nacu, v: f64) -> Fx {
        Fx::from_f64(v, nacu.config().format, Rounding::Nearest)
    }

    #[test]
    fn sigmoid_hits_paper_accuracy_over_full_range() {
        let n = paper();
        let fmt = n.config().format;
        let report = metrics::sweep_raw_range(
            fmt,
            fmt.min_raw(),
            fmt.max_raw(),
            nacu_funcapprox::reference::sigmoid,
            |x| n.sigmoid(x).to_f64(),
        );
        // §VII.A: RMSE 2.07e-4, correlation 0.999 at 16 bits.
        assert!(report.rmse < 4e-4, "rmse {}", report.rmse);
        assert!(report.max_error < 1.2e-3, "max {}", report.max_error);
        assert!(report.correlation > 0.999, "corr {}", report.correlation);
    }

    #[test]
    fn tanh_hits_paper_accuracy_over_full_range() {
        let n = paper();
        let fmt = n.config().format;
        let report = metrics::sweep_raw_range(
            fmt,
            fmt.min_raw(),
            fmt.max_raw(),
            |x| x.tanh(),
            |x| n.tanh(x).to_f64(),
        );
        // §VII.B: RMSE 2.09e-4, correlation 0.999 at 16 bits.
        assert!(report.rmse < 5e-4, "rmse {}", report.rmse);
        assert!(report.max_error < 2.5e-3, "max {}", report.max_error);
        assert!(report.correlation > 0.999, "corr {}", report.correlation);
    }

    #[test]
    fn exp_respects_the_eq16_error_bound() {
        let n = paper();
        let fmt = n.config().format;
        // δσ in the working word ≈ PWL fit error (~6e-4 worst segment);
        // Eq. 16 bounds the exp error by 4·δσ.
        let report =
            metrics::sweep_raw_range(fmt, fmt.min_raw(), 0, |x| x.exp(), |x| n.exp(x).to_f64());
        assert!(report.max_error < 4.0 * 1e-3, "max {}", report.max_error);
        assert!(report.rmse < 1e-3, "rmse {}", report.rmse);
    }

    #[test]
    fn sigmoid_centrosymmetry_is_bit_exact() {
        // Eq. 4 is implemented structurally, so σ(−x) + σ(x) must equal
        // 1.0 exactly in raw codes (both branches read the same LUT entry).
        let n = paper();
        let fmt = n.config().format;
        let one = 1_i64 << fmt.frac_bits();
        for raw in (0..=fmt.max_raw()).step_by(97) {
            let pos = n.sigmoid(Fx::from_raw(raw, fmt).unwrap()).raw();
            let neg = n.sigmoid(Fx::from_raw(-raw, fmt).unwrap()).raw();
            assert!(
                (pos + neg - one).abs() <= 1,
                "raw {raw}: {pos} + {neg} != {one}"
            );
        }
    }

    #[test]
    fn tanh_odd_symmetry_is_bit_exact() {
        // Eq. 5: tanh(−x) = −tanh(x), structurally.
        let n = paper();
        let fmt = n.config().format;
        // Start at 1: raw 0 is its own negation in two's complement, so
        // oddness only constrains non-zero codes (tanh(0) itself may carry
        // the segment's fit offset of ~1 LSB).
        for raw in (1..=fmt.max_raw()).step_by(89) {
            let pos = n.tanh(Fx::from_raw(raw, fmt).unwrap()).raw();
            let neg = n.tanh(Fx::from_raw(-raw, fmt).unwrap()).raw();
            assert!((pos + neg).abs() <= 1, "raw {raw}: {pos} vs {neg}");
        }
    }

    #[test]
    fn known_values() {
        let n = paper();
        assert!((n.sigmoid(fx(&n, 0.0)).to_f64() - 0.5).abs() < 1e-3);
        assert!(n.tanh(fx(&n, 0.0)).to_f64().abs() < 1e-3);
        assert!((n.exp(fx(&n, 0.0)).to_f64() - 1.0).abs() < 2e-3);
        assert!((n.exp(fx(&n, -1.0)).to_f64() - (-1.0f64).exp()).abs() < 2e-3);
        assert!((n.sigmoid(fx(&n, 15.9)).to_f64() - 1.0).abs() < 1e-3);
        assert!(n.exp(fx(&n, -15.9)).to_f64() < 1e-3);
    }

    #[test]
    fn exp_clamps_positive_inputs() {
        let n = paper();
        assert_eq!(n.exp(fx(&n, 3.0)), n.exp(fx(&n, 0.0)));
    }

    #[test]
    fn softmax_sums_to_one_and_preserves_order() {
        let n = paper();
        let inputs: Vec<Fx> = [1.5, -0.5, 3.0, 0.0].iter().map(|&v| fx(&n, v)).collect();
        let out = n.softmax(&inputs).unwrap();
        let sum: f64 = out.iter().map(Fx::to_f64).sum();
        assert!((sum - 1.0).abs() < 0.02, "sum {sum}");
        // Largest input gets the largest probability.
        assert!(out[2] > out[0] && out[0] > out[3] && out[3] > out[1]);
        let golden = nacu_funcapprox::reference::softmax(&[1.5, -0.5, 3.0, 0.0]);
        for (got, want) in out.iter().zip(&golden) {
            assert!((got.to_f64() - want).abs() < 5e-3, "{got} vs {want}");
        }
    }

    #[test]
    fn softmax_survives_saturating_inputs() {
        // Eq. 13's point: even inputs at the format limits normalise
        // sanely because only differences reach the exp.
        let n = paper();
        let fmt = n.config().format;
        let inputs = vec![Fx::max(fmt), Fx::max(fmt), Fx::min(fmt)];
        let out = n.softmax(&inputs).unwrap();
        assert!((out[0].to_f64() - 0.5).abs() < 0.01);
        assert!((out[1].to_f64() - 0.5).abs() < 0.01);
        assert!(out[2].to_f64() < 0.01);
    }

    #[test]
    fn softmax_rejects_empty_and_mixed_formats() {
        let n = paper();
        assert!(matches!(n.softmax(&[]), Err(NacuError::EmptyVector)));
        let alien = Fx::zero(QFormat::new(2, 13).unwrap());
        assert!(n.softmax(&[alien]).is_err());
    }

    #[test]
    fn mac_accumulates_products() {
        let n = paper();
        let fmt = n.config().format;
        let mut mac = MacAccumulator::new(fmt);
        for i in 1..=4 {
            mac.step(fx(&n, f64::from(i) * 0.5), fx(&n, 2.0));
        }
        // Σ i·0.5·2 = 1+2+3+4 = 10... wait: Σ (i·0.5)·2 = Σ i = 10? No:
        // (0.5+1.0+1.5+2.0)·2 = 10. Saturates at 15.999 so 10 is exact.
        assert!((mac.value().to_f64() - 10.0).abs() < 1e-9);
        mac.clear();
        assert!(mac.value().is_zero());
    }

    #[test]
    fn compute_dispatch_matches_direct_calls() {
        let n = paper();
        let x = fx(&n, 0.7);
        assert_eq!(n.compute(Function::Sigmoid, x), n.sigmoid(x));
        assert_eq!(n.compute(Function::Tanh, x), n.tanh(x));
        assert_eq!(n.compute(Function::Exp, fx(&n, -0.7)), n.exp(fx(&n, -0.7)));
    }

    #[test]
    #[should_panic(expected = "needs the vector/accumulator interface")]
    fn compute_rejects_softmax() {
        let n = paper();
        let x = fx(&n, 0.0);
        let _ = n.compute(Function::Softmax, x);
    }

    #[test]
    #[should_panic(expected = "does not match the configured")]
    fn wrong_input_format_panics() {
        let n = paper();
        let _ = n.sigmoid(Fx::zero(QFormat::new(2, 13).unwrap()));
    }

    #[test]
    fn narrower_widths_degrade_gracefully() {
        // Fig. 6c–e: NACU error grows as the width shrinks but the unit
        // still works at 10 bits.
        let mut last_rmse = 0.0;
        for width in [16u32, 14, 10] {
            let n = Nacu::new(NacuConfig::for_width(width).unwrap()).unwrap();
            let fmt = n.config().format;
            let report = metrics::sweep_raw_range(
                fmt,
                fmt.min_raw(),
                fmt.max_raw(),
                nacu_funcapprox::reference::sigmoid,
                |x| n.sigmoid(x).to_f64(),
            );
            assert!(
                report.rmse > last_rmse,
                "narrower width should be less accurate"
            );
            assert!(report.correlation > 0.99);
            last_rmse = report.rmse;
        }
    }

    #[test]
    fn exposed_nets_agree_with_the_private_path() {
        // The injection hooks (lookup_index / segment_bounds /
        // magnitude_raw) must describe exactly the nets the private
        // evaluation uses, or external checkers would shadow a different
        // datapath.
        let n = paper();
        let fmt = n.config().format;
        let bounds = n.segment_bounds();
        assert_eq!(bounds.len(), n.lut_entries() + 1);
        assert_eq!(bounds[0], 0);
        for raw in (fmt.min_raw()..=fmt.max_raw()).step_by(211) {
            let x = Fx::from_raw(raw, fmt).unwrap();
            let mag = n.magnitude_raw(x);
            assert!(mag >= 0);
            let idx = n.lookup_index(mag);
            assert!(idx < n.lut_entries());
            // The decoded segment contains the (clamped) address.
            let clamped = mag.clamp(0, bounds[bounds.len() - 1] - 1);
            assert!(bounds[idx] <= clamped && clamped < bounds[idx + 1]);
        }
        // The asymmetric minimum saturates instead of overflowing.
        assert_eq!(n.magnitude_raw(Fx::min(fmt)), fmt.max_raw());
    }

    #[test]
    fn instance_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Nacu>();
    }
}
