//! The restoring divider behind NACU's exp and softmax paths.
//!
//! §V.B computes `e^x = 1/σ(−x) − 1` (Eq. 14): the σ result feeds a
//! divider, then the decrementor. The paper uses a **pipelined** divider
//! (one quotient bit group per stage) shared between exp and softmax and
//! notes a sequential divider as a lower-area alternative.
//!
//! [`restoring_divide`] is the bit-exact algorithm both variants compute:
//! a classic non-performing/restoring division producing a quotient with
//! `frac_bits` fractional bits, i.e. `floor((a << frac_bits) / b)` for
//! non-negative operands. The pipelined/sequential distinction is a
//! latency/area trade-off modelled in [`crate::pipeline`] and
//! `nacu-hwmodel`; the quotient bits are identical.

use nacu_fixed::{Fx, FxError, QFormat};

/// Bit-exact restoring division of non-negative raw codes: returns the raw
/// quotient of `numer / denom` carrying `frac_bits` fractional bits
/// (truncated, as hardware restoring division is).
///
/// The loop peels one quotient bit per iteration from MSB to LSB —
/// exactly one divider pipeline stage per iteration in the paper's design.
///
/// # Errors
///
/// Returns [`FxError::DivideByZero`] if `denom` is zero.
///
/// # Panics
///
/// Panics if either operand is negative (the exp path divides values in
/// `[0.5, 1]`; signed division never occurs in NACU).
pub fn restoring_divide(numer: i64, denom: i64, frac_bits: u32) -> Result<i64, FxError> {
    assert!(
        numer >= 0 && denom >= 0,
        "restoring divider operands are unsigned"
    );
    if denom == 0 {
        return Err(FxError::DivideByZero);
    }
    // Quotient bit width: enough for the integer part plus frac_bits.
    let numer_bits = 64 - (numer as u64).leading_zeros();
    let total_q_bits = numer_bits + frac_bits;
    let mut remainder: i128 = 0;
    let mut quotient: i128 = 0;
    // Treat the dividend as numer << frac_bits and scan its bits MSB-first.
    let dividend = (numer as i128) << frac_bits;
    for i in (0..total_q_bits).rev() {
        // Shift in the next dividend bit.
        remainder = (remainder << 1) | ((dividend >> i) & 1);
        quotient <<= 1;
        let trial = remainder - denom as i128;
        if trial >= 0 {
            // Non-restoring step accepted: keep the subtracted remainder.
            remainder = trial;
            quotient |= 1;
        }
        // else: "restore" — remainder unchanged (never actually mutated).
    }
    Ok(quotient as i64)
}

/// Divides `1 / x` in the exp path's working format: `x = σ(−·) ∈ (0, 1]`
/// in a `Q2.f` working word, quotient `σ′ ∈ [1, 2]` in the same word.
///
/// # Errors
///
/// Returns [`FxError::DivideByZero`] if `x` is zero (σ quantised to zero —
/// only possible for inputs beyond the Eq. 7 saturation point, which the
/// datapath clamps before dividing).
pub fn reciprocal(x: Fx) -> Result<Fx, FxError> {
    let f = x.format().frac_bits();
    let one = 1_i64 << f;
    let q = restoring_divide(one, x.raw(), f)?;
    Ok(Fx::from_raw_saturating(q, x.format()))
}

/// Quotient of two same-format non-negative values through the restoring
/// array, saturating into the shared format.
///
/// # Errors
///
/// Returns [`FxError::DivideByZero`] if `denom` is zero, or
/// [`FxError::FormatMismatch`] if the formats differ.
pub fn divide(numer: Fx, denom: Fx) -> Result<Fx, FxError> {
    if numer.format() != denom.format() {
        return Err(FxError::FormatMismatch {
            lhs: numer.format(),
            rhs: denom.format(),
        });
    }
    let q = restoring_divide(numer.raw(), denom.raw(), numer.format().frac_bits())?;
    Ok(Fx::from_raw_saturating(q, numer.format()))
}

/// Number of divider stages for a given working format at `radix_bits`
/// quotient bits per stage (the paper's pipelined divider resolves the
/// quotient over multiple stages; radix-4 → 2 bits/stage).
#[must_use]
pub fn stage_count(format: QFormat, radix_bits: u32) -> u32 {
    let q_bits = format.total_bits();
    q_bits.div_ceil(radix_bits.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nacu_fixed::Rounding;

    #[test]
    fn matches_integer_division_exhaustively_small() {
        for frac in [0u32, 3, 7] {
            for numer in 0..128i64 {
                for denom in 1..128i64 {
                    let expected = ((numer as i128) << frac) / denom as i128;
                    assert_eq!(
                        restoring_divide(numer, denom, frac).unwrap(),
                        expected as i64,
                        "n={numer} d={denom} f={frac}"
                    );
                }
            }
        }
    }

    #[test]
    fn divide_by_zero_is_reported() {
        assert_eq!(restoring_divide(5, 0, 4), Err(FxError::DivideByZero));
    }

    #[test]
    fn reciprocal_covers_the_exp_working_range() {
        // σ(−x) ∈ [0.5, 1] → σ' = 1/σ ∈ [1, 2].
        let fmt = QFormat::new(2, 13).unwrap();
        for val in [0.5, 0.6, 0.731, 0.9, 0.999, 1.0] {
            let x = Fx::from_f64(val, fmt, Rounding::Nearest);
            let r = reciprocal(x).unwrap();
            let exact = 1.0 / x.to_f64();
            assert!(
                (r.to_f64() - exact).abs() <= fmt.resolution(),
                "1/{val}: got {} want {exact}",
                r.to_f64()
            );
            assert!(r.to_f64() >= 1.0 - 1e-12 && r.to_f64() <= 2.0 + 1e-12);
        }
    }

    #[test]
    fn reciprocal_of_zero_fails() {
        let fmt = QFormat::new(2, 13).unwrap();
        assert_eq!(reciprocal(Fx::zero(fmt)), Err(FxError::DivideByZero));
    }

    #[test]
    fn divide_matches_fx_division_floor() {
        let fmt = QFormat::new(4, 11).unwrap();
        for (a, b) in [(3.5, 0.75), (1.0, 3.0), (15.0, 1.0), (0.125, 0.5)] {
            let x = Fx::from_f64(a, fmt, Rounding::Nearest);
            let y = Fx::from_f64(b, fmt, Rounding::Nearest);
            let hw = divide(x, y).unwrap();
            let golden = x.checked_div(y, Rounding::Floor);
            match golden {
                Ok(g) => assert_eq!(hw, g, "{a}/{b}"),
                Err(_) => assert_eq!(hw.raw(), fmt.max_raw(), "{a}/{b} saturates"),
            }
        }
    }

    #[test]
    fn mismatched_formats_are_rejected() {
        let a = Fx::zero(QFormat::new(4, 11).unwrap());
        let b = Fx::one(QFormat::new(2, 13).unwrap());
        assert!(matches!(divide(a, b), Err(FxError::FormatMismatch { .. })));
    }

    #[test]
    fn stage_counts() {
        let fmt = QFormat::new(4, 11).unwrap();
        assert_eq!(stage_count(fmt, 1), 16); // radix-2: one bit per stage
        assert_eq!(stage_count(fmt, 2), 8); // radix-4: Table I's 8-cycle exp
    }

    #[test]
    #[should_panic(expected = "unsigned")]
    fn negative_operands_panic() {
        let _ = restoring_divide(-1, 3, 4);
    }
}
