//! Value-change-dump (VCD) tracing of the pipeline model.
//!
//! A reproduction of a hardware paper should let you *look at waveforms*:
//! this module is a minimal, dependency-free IEEE-1364 VCD writer plus a
//! tracer that records a [`crate::pipeline::NacuPipeline`] run (input
//! operand, function select, output word, valid strobe) so any waveform
//! viewer can display the model's cycle-by-cycle behaviour.

use std::fmt::Write as _;

use nacu_fixed::Fx;

use crate::config::Function;
use crate::pipeline::NacuPipeline;

/// One traced signal.
#[derive(Debug, Clone)]
struct Signal {
    id: char,
    name: String,
    width: u32,
    last: Option<u64>,
}

/// A minimal VCD writer: declare signals, advance time, emit changes.
///
/// # Example
///
/// ```
/// use nacu::vcd::VcdWriter;
///
/// let mut vcd = VcdWriter::new("nacu", 3750); // 3.75 ns in ps
/// let clk = vcd.add_signal("clk", 1);
/// let data = vcd.add_signal("y", 16);
/// vcd.change(clk, 1);
/// vcd.change(data, 0x0800);
/// vcd.step();
/// vcd.change(clk, 0);
/// vcd.step();
/// let text = vcd.finish();
/// assert!(text.contains("$var wire 16"));
/// ```
#[derive(Debug, Clone)]
pub struct VcdWriter {
    module: String,
    timescale_ps: u64,
    signals: Vec<Signal>,
    body: String,
    time: u64,
    pending: Vec<(usize, u64)>,
    started: bool,
}

/// Handle to a declared signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalId(usize);

impl VcdWriter {
    /// Creates a writer for one module scope with the given timescale in
    /// picoseconds per step.
    #[must_use]
    pub fn new(module: &str, timescale_ps: u64) -> Self {
        Self {
            module: module.to_string(),
            timescale_ps: timescale_ps.max(1),
            signals: Vec::new(),
            body: String::new(),
            time: 0,
            pending: Vec::new(),
            started: false,
        }
    }

    /// Declares a signal of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if called after the first [`VcdWriter::step`], if the width
    /// is 0 or > 64, or if more than 90 signals are declared (the
    /// single-character identifier space of this minimal writer).
    pub fn add_signal(&mut self, name: &str, width: u32) -> SignalId {
        assert!(!self.started, "declare all signals before stepping");
        assert!((1..=64).contains(&width), "width must be 1..=64");
        assert!(self.signals.len() < 90, "too many signals");
        let id = char::from_u32('!' as u32 + self.signals.len() as u32).expect("printable id");
        self.signals.push(Signal {
            id,
            name: name.to_string(),
            width,
            last: None,
        });
        SignalId(self.signals.len() - 1)
    }

    /// Schedules a value change for the current time step.
    ///
    /// # Panics
    ///
    /// Panics for an unknown id (impossible through the public API).
    pub fn change(&mut self, signal: SignalId, value: u64) {
        assert!(signal.0 < self.signals.len(), "unknown signal");
        self.pending.push((signal.0, value));
    }

    /// Emits the pending changes at the current time and advances one step.
    pub fn step(&mut self) {
        if !self.started {
            self.started = true;
        }
        let mut wrote_time = false;
        let pending = std::mem::take(&mut self.pending);
        for (idx, value) in pending {
            let sig = &mut self.signals[idx];
            let masked = if sig.width == 64 {
                value
            } else {
                value & ((1u64 << sig.width) - 1)
            };
            if sig.last == Some(masked) {
                continue;
            }
            if !wrote_time {
                let _ = writeln!(self.body, "#{}", self.time);
                wrote_time = true;
            }
            if sig.width == 1 {
                let _ = writeln!(self.body, "{}{}", masked & 1, sig.id);
            } else {
                let _ = writeln!(self.body, "b{masked:b} {}", sig.id);
            }
            sig.last = Some(masked);
        }
        self.time += 1;
    }

    /// Current time step.
    #[must_use]
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Renders the complete VCD file.
    #[must_use]
    pub fn finish(mut self) -> String {
        // Flush anything still pending.
        self.step();
        let mut out = String::new();
        let _ = writeln!(out, "$date reproduction run $end");
        let _ = writeln!(out, "$version nacu-repro vcd writer $end");
        let _ = writeln!(out, "$timescale {} ps $end", self.timescale_ps);
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for sig in &self.signals {
            let _ = writeln!(out, "$var wire {} {} {} $end", sig.width, sig.id, sig.name);
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        out.push_str(&self.body);
        let _ = writeln!(out, "#{}", self.time);
        out
    }
}

/// Function-select encoding used in traces (matches the Verilog top).
fn function_code(function: Function) -> u64 {
    match function {
        Function::Sigmoid => 0,
        Function::Tanh => 1,
        Function::Exp => 2,
        Function::Softmax => 3,
        Function::Mac => 4,
    }
}

/// Streams a batch through a pipeline and records a VCD trace of the
/// operand, function select, result and valid strobe.
///
/// # Panics
///
/// Panics if `function` is [`Function::Softmax`] or [`Function::Mac`]
/// (vector/stateful modes are not single-stream traces).
#[must_use]
pub fn trace_batch(pipe: &mut NacuPipeline, function: Function, operands: &[Fx]) -> String {
    let width = pipe.nacu().config().format.total_bits();
    let mut vcd = VcdWriter::new("nacu", 3750);
    let clk = vcd.add_signal("clk", 1);
    let sel = vcd.add_signal("func_sel", 3);
    let x = vcd.add_signal("x", width);
    let y = vcd.add_signal("y", width);
    let valid = vcd.add_signal("y_valid", 1);
    for &operand in operands {
        vcd.change(clk, 1);
        vcd.change(sel, function_code(function));
        vcd.change(x, operand.raw() as u64);
        pipe.issue(function, operand);
        if let Some(result) = pipe.tick() {
            vcd.change(y, result.raw() as u64);
            vcd.change(valid, 1);
        } else {
            vcd.change(valid, 0);
        }
        vcd.step();
        vcd.change(clk, 0);
        vcd.step();
    }
    for result in pipe.drain() {
        vcd.change(clk, 1);
        vcd.change(y, result.raw() as u64);
        vcd.change(valid, 1);
        vcd.step();
        vcd.change(clk, 0);
        vcd.step();
    }
    vcd.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Nacu, NacuConfig};
    use nacu_fixed::Rounding;

    #[test]
    fn writer_produces_well_formed_header_and_changes() {
        let mut vcd = VcdWriter::new("dut", 1000);
        let a = vcd.add_signal("a", 4);
        let b = vcd.add_signal("b", 1);
        vcd.change(a, 0xF);
        vcd.change(b, 1);
        vcd.step();
        vcd.change(a, 0xF); // duplicate: must be suppressed
        vcd.step();
        vcd.change(a, 0x3);
        vcd.step();
        let text = vcd.finish();
        assert!(text.contains("$timescale 1000 ps $end"));
        assert!(text.contains("$var wire 4 ! a $end"));
        assert!(text.contains("b1111 !"));
        assert!(text.contains("b11 !"));
        // The duplicate change produced no second b1111 line.
        assert_eq!(text.matches("b1111 !").count(), 1);
    }

    #[test]
    fn trace_contains_one_valid_result_per_operand() {
        let nacu = Nacu::new(NacuConfig::paper_16bit()).unwrap();
        let fmt = nacu.config().format;
        let mut pipe = NacuPipeline::new(nacu);
        let xs: Vec<Fx> = (0..5)
            .map(|i| Fx::from_f64(f64::from(i) * 0.5 - 1.0, fmt, Rounding::Nearest))
            .collect();
        let text = trace_batch(&mut pipe, Function::Sigmoid, &xs);
        // One y-word change per retired result (the five sigmoid outputs
        // are distinct); y is the fourth declared signal, id '$'.
        let y_changes = text.matches(" $\n").count();
        assert_eq!(y_changes, 5, "{text}");
        // valid rises exactly once (it stays high while streaming, and the
        // writer deduplicates repeated values as VCD requires).
        assert_eq!(text.matches("\n1%").count(), 1);
        assert!(text.contains("$var wire 16"));
    }

    #[test]
    #[should_panic(expected = "declare all signals before stepping")]
    fn late_declaration_panics() {
        let mut vcd = VcdWriter::new("dut", 1);
        let _ = vcd.add_signal("a", 1);
        vcd.step();
        let _ = vcd.add_signal("b", 1);
    }

    #[test]
    #[should_panic(expected = "width must be 1..=64")]
    fn zero_width_panics() {
        let mut vcd = VcdWriter::new("dut", 1);
        let _ = vcd.add_signal("a", 0);
    }
}
