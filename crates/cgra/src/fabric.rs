//! The 2-D mesh of processing cells with single-cycle neighbour links.

use std::sync::Arc;

use nacu::Nacu;

use crate::cell::{Cell, CellState};
use crate::isa::{Direction, Program};

/// Grid coordinates: `(row, col)`.
pub type Coord = (usize, usize);

/// A `rows × cols` fabric of NACU cells.
///
/// Every cycle, all cells execute one tick, then the router moves every
/// word sent this cycle into the destination cell's mailbox (available
/// next cycle — a one-cycle link, as in a register-bounded mesh).
#[derive(Debug, Clone)]
pub struct Fabric {
    rows: usize,
    cols: usize,
    cells: Vec<Cell>,
    cycle: u64,
}

impl Fabric {
    /// Builds a fabric whose cells share one NACU configuration.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(rows: usize, cols: usize, nacu: Arc<Nacu>) -> Self {
        assert!(rows > 0 && cols > 0, "fabric dimensions must be positive");
        let cells = (0..rows * cols)
            .map(|_| Cell::new(Arc::clone(&nacu)))
            .collect();
        Self {
            rows,
            cols,
            cells,
            cycle: 0,
        }
    }

    /// Grid dimensions.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Elapsed cycles.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn index(&self, at: Coord) -> usize {
        assert!(at.0 < self.rows && at.1 < self.cols, "coordinate off-grid");
        at.0 * self.cols + at.1
    }

    /// Immutable cell access.
    #[must_use]
    pub fn cell(&self, at: Coord) -> &Cell {
        &self.cells[self.index(at)]
    }

    /// Mutable cell access (loading data/programs).
    pub fn cell_mut(&mut self, at: Coord) -> &mut Cell {
        let idx = self.index(at);
        &mut self.cells[idx]
    }

    /// Loads a program into one cell.
    pub fn load(&mut self, at: Coord, program: Program) {
        self.cell_mut(at).load_program(program);
    }

    /// The neighbour of `at` in `dir`, if on the grid.
    #[must_use]
    pub fn neighbour(&self, at: Coord, dir: Direction) -> Option<Coord> {
        let (r, c) = at;
        match dir {
            Direction::West => c.checked_sub(1).map(|c| (r, c)),
            Direction::East => (c + 1 < self.cols).then_some((r, c + 1)),
            Direction::North => r.checked_sub(1).map(|r| (r, c)),
            Direction::South => (r + 1 < self.rows).then_some((r + 1, c)),
        }
    }

    /// Executes one fabric cycle: tick every cell, then route.
    pub fn step(&mut self) {
        for cell in &mut self.cells {
            cell.tick();
        }
        // Route: a word sent towards `dir` arrives at the neighbour's
        // opposite-side mailbox; words sent off-grid are dropped (edge
        // cells talk to the outside world through explicit I/O in tests).
        let mut deliveries: Vec<(usize, Direction, nacu_fixed::Fx)> = Vec::new();
        for r in 0..self.rows {
            for c in 0..self.cols {
                let idx = r * self.cols + c;
                for (dir, word) in self.cells[idx].take_outbox() {
                    if let Some(to) = self.neighbour((r, c), dir) {
                        let from_side = match dir {
                            Direction::West => Direction::East,
                            Direction::East => Direction::West,
                            Direction::North => Direction::South,
                            Direction::South => Direction::North,
                        };
                        deliveries.push((self.index(to), from_side, word));
                    }
                }
            }
        }
        for (idx, side, word) in deliveries {
            self.cells[idx].deliver(side, word);
        }
        self.cycle += 1;
    }

    /// Runs until every cell halts, up to `max_cycles`.
    ///
    /// Returns the cycles consumed.
    ///
    /// # Panics
    ///
    /// Panics if the fabric has not quiesced after `max_cycles` (a
    /// deadlocked `rcv` or runaway program).
    pub fn run_to_quiescence(&mut self, max_cycles: u64) -> u64 {
        let start = self.cycle;
        while self.cells.iter().any(|c| c.state() != CellState::Halted) {
            assert!(
                self.cycle - start < max_cycles,
                "fabric did not quiesce within {max_cycles} cycles"
            );
            self.step();
        }
        self.cycle - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instruction, Reg};
    use nacu::NacuConfig;

    fn fabric(rows: usize, cols: usize) -> Fabric {
        Fabric::new(
            rows,
            cols,
            Arc::new(Nacu::new(NacuConfig::paper_16bit()).unwrap()),
        )
    }

    #[test]
    fn neighbour_topology() {
        let f = fabric(2, 3);
        assert_eq!(f.neighbour((0, 0), Direction::West), None);
        assert_eq!(f.neighbour((0, 0), Direction::East), Some((0, 1)));
        assert_eq!(f.neighbour((0, 0), Direction::South), Some((1, 0)));
        assert_eq!(f.neighbour((1, 2), Direction::East), None);
        assert_eq!(f.neighbour((1, 2), Direction::North), Some((0, 2)));
    }

    #[test]
    fn word_crosses_a_link_in_one_cycle() {
        let mut f = fabric(1, 2);
        let r = Reg::new;
        let v = f.cell((0, 0)).quantize(0.75);
        f.cell_mut((0, 0)).set_reg(r(0), v);
        f.load(
            (0, 0),
            Program::from_instructions(vec![
                Instruction::Send(Direction::East, r(0)),
                Instruction::Halt,
            ]),
        );
        f.load(
            (0, 1),
            Program::from_instructions(vec![
                Instruction::Recv(r(1), Direction::West),
                Instruction::Halt,
            ]),
        );
        let cycles = f.run_to_quiescence(20);
        assert_eq!(f.cell((0, 1)).reg(r(1)), v);
        assert!(cycles <= 5, "took {cycles} cycles");
    }

    #[test]
    fn pipeline_of_cells_relays_data() {
        // Four cells in a row: each forwards west->east.
        let mut f = fabric(1, 4);
        let r = Reg::new;
        let v = f.cell((0, 0)).quantize(-1.5);
        f.cell_mut((0, 0)).set_reg(r(0), v);
        f.load(
            (0, 0),
            Program::from_instructions(vec![
                Instruction::Send(Direction::East, r(0)),
                Instruction::Halt,
            ]),
        );
        for c in 1..3 {
            f.load(
                (0, c),
                Program::from_instructions(vec![
                    Instruction::Recv(r(0), Direction::West),
                    Instruction::Send(Direction::East, r(0)),
                    Instruction::Halt,
                ]),
            );
        }
        f.load(
            (0, 3),
            Program::from_instructions(vec![
                Instruction::Recv(r(0), Direction::West),
                Instruction::Halt,
            ]),
        );
        f.run_to_quiescence(50);
        assert_eq!(f.cell((0, 3)).reg(r(0)), v);
    }

    #[test]
    fn off_grid_sends_are_dropped() {
        let mut f = fabric(1, 1);
        let r = Reg::new;
        f.load(
            (0, 0),
            Program::from_instructions(vec![
                Instruction::Send(Direction::North, r(0)),
                Instruction::Halt,
            ]),
        );
        // Must simply not panic.
        f.run_to_quiescence(10);
    }

    #[test]
    #[should_panic(expected = "did not quiesce")]
    fn deadlock_is_detected() {
        let mut f = fabric(1, 1);
        let r = Reg::new;
        f.load(
            (0, 0),
            Program::from_instructions(vec![Instruction::Recv(r(0), Direction::West)]),
        );
        f.run_to_quiescence(25);
    }

    #[test]
    #[should_panic(expected = "coordinate off-grid")]
    fn off_grid_access_panics() {
        let f = fabric(2, 2);
        let _ = f.cell((2, 0));
    }
}
