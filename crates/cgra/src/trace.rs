//! Waveform tracing of a fabric run.
//!
//! Records, per cell and cycle: the execution state (running / busy /
//! waiting / halted) and one probed register — enough to see the scan
//! waves of the distributed softmax move across the mesh in any VCD
//! viewer.

use nacu::vcd::{SignalId, VcdWriter};

use crate::cell::CellState;
use crate::fabric::Fabric;
use crate::isa::Reg;

/// State encoding used in traces.
fn state_code(state: CellState) -> u64 {
    match state {
        CellState::Running => 0,
        CellState::Busy(_) => 1,
        CellState::WaitingOn(_) => 2,
        CellState::Halted => 3,
    }
}

/// Runs the fabric to quiescence while recording a VCD trace of every
/// cell's state and the probed register.
///
/// Returns the rendered VCD text.
///
/// # Panics
///
/// Panics if the fabric does not quiesce within `max_cycles`, or if the
/// grid has more than 44 cells (two signals per cell; this minimal VCD
/// writer has a 90-signal identifier space).
#[must_use]
pub fn trace_to_quiescence(fabric: &mut Fabric, probe: Reg, max_cycles: u64) -> String {
    let (rows, cols) = fabric.dims();
    assert!(rows * cols <= 44, "trace supports at most 44 cells");
    let width = fabric.cell((0, 0)).format().total_bits();
    let mut vcd = VcdWriter::new("fabric", 3750);
    let mut state_sigs: Vec<SignalId> = Vec::new();
    let mut reg_sigs: Vec<SignalId> = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            state_sigs.push(vcd.add_signal(&format!("cell_{r}_{c}_state"), 2));
            reg_sigs.push(vcd.add_signal(&format!("cell_{r}_{c}_{probe}"), width));
        }
    }
    let record = |fabric: &Fabric, vcd: &mut VcdWriter| {
        for r in 0..rows {
            for c in 0..cols {
                let idx = r * cols + c;
                let cell = fabric.cell((r, c));
                vcd.change(state_sigs[idx], state_code(cell.state()));
                vcd.change(reg_sigs[idx], cell.reg(probe).raw() as u64);
            }
        }
        vcd.step();
    };
    record(fabric, &mut vcd);
    let start = fabric.cycle();
    while (0..rows).any(|r| (0..cols).any(|c| fabric.cell((r, c)).state() != CellState::Halted)) {
        assert!(
            fabric.cycle() - start < max_cycles,
            "fabric did not quiesce within {max_cycles} cycles"
        );
        fabric.step();
        record(fabric, &mut vcd);
    }
    vcd.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instruction, Program};
    use crate::mapper::{self, convention};
    use nacu::{Nacu, NacuConfig};
    use std::sync::Arc;

    fn fabric(cols: usize) -> Fabric {
        Fabric::new(
            1,
            cols,
            Arc::new(Nacu::new(NacuConfig::paper_16bit()).unwrap()),
        )
    }

    #[test]
    fn trace_declares_two_signals_per_cell() {
        let mut f = fabric(3);
        for c in 0..3 {
            f.load((0, c), Program::from_instructions(vec![Instruction::Halt]));
        }
        let text = trace_to_quiescence(&mut f, convention::output(), 100);
        assert_eq!(text.matches("$var wire 2 ").count(), 3, "state signals");
        assert_eq!(text.matches("$var wire 16 ").count(), 3, "register probes");
        assert!(text.contains("cell_0_2_r15"));
    }

    #[test]
    fn softmax_wave_is_visible_in_the_trace() {
        let mut f = fabric(4);
        for (i, v) in [1.0, 2.0, 0.5, -1.0].iter().enumerate() {
            let q = f.cell((0, i)).quantize(*v);
            f.cell_mut((0, i)).set_reg(convention::value(), q);
        }
        for (i, p) in mapper::compile_softmax_row(4).into_iter().enumerate() {
            f.load((0, i), p);
        }
        let text = trace_to_quiescence(&mut f, convention::output(), 1000);
        // Every cell's probed register changes at least twice (exp result,
        // then normalised result), so the trace carries real waves.
        for c in 0..4 {
            let id = char::from_u32('!' as u32 + (2 * c + 1) as u32).unwrap();
            let changes = text
                .lines()
                .filter(|l| l.starts_with('b') && l.ends_with(id))
                .count();
            assert!(changes >= 2, "cell {c} register traced {changes} changes");
        }
        // And a waiting state (code 2) appears somewhere: the scans block.
        assert!(text.lines().any(|l| l.starts_with("b10 ")));
    }

    #[test]
    fn halted_fabric_traces_a_single_frame() {
        let mut f = fabric(1);
        let text = trace_to_quiescence(&mut f, convention::output(), 10);
        // Initial record then the terminating timestamp.
        assert!(text.contains("#0"));
    }

    #[test]
    #[should_panic(expected = "at most 44 cells")]
    fn oversized_fabric_is_rejected() {
        let mut f = Fabric::new(
            5,
            9,
            Arc::new(Nacu::new(NacuConfig::paper_16bit()).unwrap()),
        );
        let _ = trace_to_quiescence(&mut f, convention::output(), 10);
    }
}
