//! A small coarse-grain reconfigurable fabric with NACU-equipped cells.
//!
//! The paper's opening argument is that CGRAs "customised for ANNs provide
//! ASIC comparable efficiency while retaining a degree of flexibility to
//! morph into different ANN topologies like CNN or LSTM", and that such
//! fabrics "need these varieties of non-linearity available in the same
//! unit". This crate builds that deployment context:
//!
//! * [`isa`] — a compact register ISA for one processing cell: MAC
//!   accumulation, the four NACU non-linearities, register moves and
//!   nearest-neighbour communication;
//! * [`cell`] — a cycle-accurate processing cell: 16 registers, a MAC
//!   accumulator, one NACU instance, per-function latencies matching
//!   Table I (3/3/8 cycles);
//! * [`fabric`] — a grid of cells with single-cycle neighbour links;
//! * [`asm`] — a tiny two-way assembler so programs are inspectable text;
//! * [`mapper`] — compiles a dense layer (one output neuron per cell) and
//!   a softmax head onto the fabric, bit-identical to the `nacu-nn`
//!   reference execution;
//! * [`trace`] — VCD waveform capture of a fabric run (cell states and a
//!   probed register, viewable in any waveform viewer).
//!
//! "Reconfiguration" is literal here: the same cell program memory is
//! rewritten between phases ([`cell::Cell::load_program`]) and the same
//! NACU switches functions instruction by instruction.

pub mod asm;
pub mod cell;
pub mod fabric;
pub mod isa;
pub mod mapper;
pub mod trace;

pub use cell::Cell;
pub use fabric::Fabric;
pub use isa::{Instruction, Program, Reg};
