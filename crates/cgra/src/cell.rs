//! A cycle-accurate processing cell: registers, MAC, one NACU.

use std::collections::VecDeque;
use std::sync::Arc;

use nacu::datapath::MacAccumulator;
use nacu::Nacu;
use nacu_fixed::{Fx, QFormat, Rounding};

use crate::isa::{Direction, Instruction, Program, Reg};

/// Execution state of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellState {
    /// Executing instructions.
    Running,
    /// Stalled on a NACU/divider latency (`n` cycles remaining).
    Busy(u32),
    /// Blocked on an empty mailbox.
    WaitingOn(Direction),
    /// Halted (program finished or `hlt`).
    Halted,
}

/// One processing cell of the fabric.
///
/// The NACU instance is shared (`Arc`) across cells — in silicon every
/// cell has its own unit, but they are identical ROMs, so sharing the
/// model keeps construction cheap without changing any result.
#[derive(Debug, Clone)]
pub struct Cell {
    nacu: Arc<Nacu>,
    format: QFormat,
    regs: [Fx; Reg::COUNT],
    acc: MacAccumulator,
    program: Program,
    pc: usize,
    state: CellState,
    /// Inbound mailboxes, one per direction.
    inbox: [VecDeque<Fx>; 4],
    /// Outbound words produced this cycle: `(direction, word)`.
    outbox: Vec<(Direction, Fx)>,
    retired: u64,
}

fn dir_index(dir: Direction) -> usize {
    match dir {
        Direction::West => 0,
        Direction::East => 1,
        Direction::North => 2,
        Direction::South => 3,
    }
}

impl Cell {
    /// Creates an idle cell around a shared NACU instance.
    #[must_use]
    pub fn new(nacu: Arc<Nacu>) -> Self {
        let format = nacu.config().format;
        Self {
            nacu,
            format,
            regs: [Fx::zero(format); Reg::COUNT],
            acc: MacAccumulator::new(format),
            program: Program::new(),
            pc: 0,
            state: CellState::Halted,
            inbox: [const { VecDeque::new() }; 4],
            outbox: Vec::new(),
            retired: 0,
        }
    }

    /// Loads (reconfigures) a program and restarts the cell. Registers and
    /// mailboxes survive reconfiguration — that is what lets one phase
    /// hand data to the next, the "morphing" use case.
    pub fn load_program(&mut self, program: Program) {
        self.program = program;
        self.pc = 0;
        self.state = if self.program.is_empty() {
            CellState::Halted
        } else {
            CellState::Running
        };
    }

    /// Current execution state.
    #[must_use]
    pub fn state(&self) -> CellState {
        self.state
    }

    /// Reads a register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> Fx {
        self.regs[r.index()]
    }

    /// Writes a register directly (test benches and data loading).
    pub fn set_reg(&mut self, r: Reg, v: Fx) {
        assert_eq!(v.format(), self.format, "format mismatch");
        self.regs[r.index()] = v;
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The datapath format.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Delivers a word into a mailbox (called by the fabric router).
    pub fn deliver(&mut self, from: Direction, word: Fx) {
        self.inbox[dir_index(from)].push_back(word);
    }

    /// Drains the words sent this cycle (called by the fabric router).
    pub fn take_outbox(&mut self) -> Vec<(Direction, Fx)> {
        std::mem::take(&mut self.outbox)
    }

    /// Executes one clock cycle.
    pub fn tick(&mut self) {
        match self.state {
            CellState::Halted => {}
            CellState::Busy(n) => {
                self.state = if n <= 1 {
                    CellState::Running
                } else {
                    CellState::Busy(n - 1)
                };
            }
            CellState::WaitingOn(dir) => {
                if let Some(word) = self.inbox[dir_index(dir)].pop_front() {
                    // The blocked `rcv` completes this cycle.
                    if let Some(Instruction::Recv(rd, _)) = self.program.fetch(self.pc) {
                        self.regs[rd.index()] = word;
                    }
                    self.pc += 1;
                    self.retired += 1;
                    self.state = CellState::Running;
                }
            }
            CellState::Running => self.execute(),
        }
    }

    fn execute(&mut self) {
        let Some(ins) = self.program.fetch(self.pc) else {
            self.state = CellState::Halted;
            return;
        };
        let mut advance = true;
        match ins {
            Instruction::Ldi(rd, raw) => {
                self.regs[rd.index()] = Fx::from_raw_saturating(raw, self.format);
            }
            Instruction::Mov(rd, rs) => self.regs[rd.index()] = self.regs[rs.index()],
            Instruction::ClearAcc => self.acc.clear(),
            Instruction::Mac(ra, rb) => {
                self.acc.step(self.regs[ra.index()], self.regs[rb.index()]);
            }
            Instruction::StoreAcc(rd) => self.regs[rd.index()] = self.acc.value(),
            Instruction::Add(rd, ra, rb) => {
                self.regs[rd.index()] = self.regs[ra.index()] + self.regs[rb.index()];
            }
            Instruction::Sub(rd, ra, rb) => {
                self.regs[rd.index()] = self.regs[ra.index()] - self.regs[rb.index()];
            }
            Instruction::Max(rd, ra, rb) => {
                let (a, b) = (self.regs[ra.index()], self.regs[rb.index()]);
                self.regs[rd.index()] = if a.raw() >= b.raw() { a } else { b };
            }
            Instruction::Sigmoid(rd, rs) => {
                self.regs[rd.index()] = self.nacu.sigmoid(self.regs[rs.index()]);
                self.stall(nacu::pipeline::latency_cycles(nacu::Function::Sigmoid));
            }
            Instruction::Tanh(rd, rs) => {
                self.regs[rd.index()] = self.nacu.tanh(self.regs[rs.index()]);
                self.stall(nacu::pipeline::latency_cycles(nacu::Function::Tanh));
            }
            Instruction::Exp(rd, rs) => {
                self.regs[rd.index()] = self.nacu.exp(self.regs[rs.index()]);
                self.stall(nacu::pipeline::latency_cycles(nacu::Function::Exp));
            }
            Instruction::Div(rd, ra, rb) => {
                let numer = self.regs[ra.index()];
                let denom = self.regs[rb.index()];
                // Division by zero saturates high — the hardware raises a
                // sticky flag; the model keeps the worst-case value. The
                // restoring array is unsigned; signs are fixed up around
                // it, as the sign-magnitude front-end of the RTL does.
                self.regs[rd.index()] = if denom.is_zero() {
                    Fx::max(self.format)
                } else {
                    let negative = numer.is_negative() != denom.is_negative();
                    let q = nacu::divider::divide(numer.abs_saturating(), denom.abs_saturating())
                        .expect("same format, non-zero denominator");
                    if negative {
                        q.neg_saturating()
                    } else {
                        q
                    }
                };
                self.stall(nacu::pipeline::latency_cycles(nacu::Function::Exp));
            }
            Instruction::Send(dir, rs) => {
                self.outbox.push((dir, self.regs[rs.index()]));
            }
            Instruction::Recv(rd, dir) => {
                if let Some(word) = self.inbox[dir_index(dir)].pop_front() {
                    self.regs[rd.index()] = word;
                } else {
                    self.state = CellState::WaitingOn(dir);
                    advance = false;
                }
            }
            Instruction::Halt => {
                self.state = CellState::Halted;
                advance = false;
                self.retired += 1;
            }
        }
        if advance {
            self.pc += 1;
            self.retired += 1;
        }
    }

    fn stall(&mut self, latency: u32) {
        if latency > 1 {
            self.state = CellState::Busy(latency - 1);
        }
    }

    /// Convenience: quantises a real value into the cell's format.
    #[must_use]
    pub fn quantize(&self, v: f64) -> Fx {
        Fx::from_f64(v, self.format, Rounding::Nearest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nacu::NacuConfig;

    fn cell() -> Cell {
        Cell::new(Arc::new(Nacu::new(NacuConfig::paper_16bit()).unwrap()))
    }

    fn run_to_halt(c: &mut Cell, max_cycles: u32) -> u32 {
        let mut cycles = 0;
        while c.state() != CellState::Halted {
            c.tick();
            cycles += 1;
            assert!(cycles <= max_cycles, "cell did not halt");
        }
        cycles
    }

    #[test]
    fn mac_program_computes_a_dot_product() {
        let mut c = cell();
        let r = Reg::new;
        let one = c.format().scale();
        // acc = 1.5*2 + (-0.5)*4 = 1.0
        c.load_program(Program::from_instructions(vec![
            Instruction::Ldi(r(0), 3 * one / 2),
            Instruction::Ldi(r(1), 2 * one),
            Instruction::Ldi(r(2), -one / 2),
            Instruction::Ldi(r(3), 4 * one),
            Instruction::ClearAcc,
            Instruction::Mac(r(0), r(1)),
            Instruction::Mac(r(2), r(3)),
            Instruction::StoreAcc(r(4)),
            Instruction::Halt,
        ]));
        run_to_halt(&mut c, 20);
        assert_eq!(c.reg(r(4)).to_f64(), 1.0);
    }

    #[test]
    fn nacu_ops_stall_for_their_table1_latency() {
        let mut c = cell();
        let r = Reg::new;
        c.load_program(Program::from_instructions(vec![
            Instruction::Ldi(r(0), 0),
            Instruction::Sigmoid(r(1), r(0)), // 3 cycles
            Instruction::Exp(r(2), r(0)),     // 8 cycles
            Instruction::Halt,
        ]));
        let cycles = run_to_halt(&mut c, 40);
        // ldi(1) + sig(3) + exp(8) + hlt(1) = 13.
        assert_eq!(cycles, 13);
        assert!((c.reg(r(1)).to_f64() - 0.5).abs() < 1e-3);
        assert!((c.reg(r(2)).to_f64() - 1.0).abs() < 2e-3);
    }

    #[test]
    fn results_match_the_bare_nacu() {
        let mut c = cell();
        let r = Reg::new;
        let x = c.quantize(-1.3);
        c.set_reg(r(0), x);
        c.load_program(Program::from_instructions(vec![
            Instruction::Tanh(r(1), r(0)),
            Instruction::Halt,
        ]));
        run_to_halt(&mut c, 10);
        let direct = Nacu::new(NacuConfig::paper_16bit()).unwrap().tanh(x);
        assert_eq!(c.reg(r(1)), direct, "cell result is bit-identical");
    }

    #[test]
    fn recv_blocks_until_delivery() {
        let mut c = cell();
        let r = Reg::new;
        c.load_program(Program::from_instructions(vec![
            Instruction::Recv(r(0), Direction::West),
            Instruction::Halt,
        ]));
        c.tick();
        assert_eq!(c.state(), CellState::WaitingOn(Direction::West));
        c.tick();
        assert_eq!(c.state(), CellState::WaitingOn(Direction::West));
        let word = c.quantize(2.5);
        c.deliver(Direction::West, word);
        c.tick(); // the blocked rcv completes
        c.tick(); // hlt
        assert_eq!(c.state(), CellState::Halted);
        assert_eq!(c.reg(r(0)), word);
    }

    #[test]
    fn send_words_appear_in_the_outbox() {
        let mut c = cell();
        let r = Reg::new;
        let v = c.quantize(1.25);
        c.set_reg(r(3), v);
        c.load_program(Program::from_instructions(vec![
            Instruction::Send(Direction::South, r(3)),
            Instruction::Halt,
        ]));
        c.tick();
        let out = c.take_outbox();
        assert_eq!(out, vec![(Direction::South, v)]);
    }

    #[test]
    fn division_by_zero_saturates() {
        let mut c = cell();
        let r = Reg::new;
        c.set_reg(r(0), c.quantize(1.0));
        c.load_program(Program::from_instructions(vec![
            Instruction::Div(r(2), r(0), r(1)), // r1 is zero
            Instruction::Halt,
        ]));
        run_to_halt(&mut c, 20);
        assert_eq!(c.reg(r(2)).raw(), c.format().max_raw());
    }

    #[test]
    fn reconfiguration_preserves_registers() {
        let mut c = cell();
        let r = Reg::new;
        c.load_program(Program::from_instructions(vec![
            Instruction::Ldi(r(5), 1000),
            Instruction::Halt,
        ]));
        run_to_halt(&mut c, 10);
        // Morph into a different program: r5 survives.
        c.load_program(Program::from_instructions(vec![
            Instruction::Mov(r(6), r(5)),
            Instruction::Halt,
        ]));
        run_to_halt(&mut c, 10);
        assert_eq!(c.reg(r(6)).raw(), 1000);
    }
}
