//! Compiling NN kernels onto the fabric.
//!
//! Two mappings, matching the paper's deployment story:
//!
//! * [`compile_dense`] — one output neuron per cell: weights are inlined
//!   as immediates, the dot product runs on the MAC, the activation on
//!   the cell's NACU. Bit-identical to the `nacu-nn` reference layer.
//! * [`compile_softmax_row`] — a row of cells holding one logit each
//!   cooperates through the mesh: max-scan (Eq. 13's normalisation),
//!   exp, sum-scan, broadcast, divide. The numerically stable softmax as
//!   a *distributed* program.

use nacu_fixed::{Fx, QFormat, Rounding};

use crate::isa::{Direction, Instruction, Program};

/// Register conventions used by the generated programs.
pub mod convention {
    use crate::isa::Reg;

    /// Input activations occupy `r0..r{n}` (dense mapping, n ≤ 12).
    #[must_use]
    pub fn input(i: usize) -> Reg {
        assert!(i < 12, "dense mapping supports at most 12 inputs");
        Reg::new(i as u8)
    }

    /// The cell's logit / result value.
    #[must_use]
    pub fn value() -> Reg {
        Reg::new(12)
    }

    /// Scratch register for immediates.
    #[must_use]
    pub fn scratch() -> Reg {
        Reg::new(14)
    }

    /// Second scratch (scan partials).
    #[must_use]
    pub fn scratch2() -> Reg {
        Reg::new(13)
    }

    /// The final output of a program.
    #[must_use]
    pub fn output() -> Reg {
        Reg::new(15)
    }
}

/// Which non-linearity a dense mapping applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappedActivation {
    /// NACU sigmoid.
    Sigmoid,
    /// NACU tanh.
    Tanh,
    /// No activation (logits for a softmax head).
    Identity,
}

/// Compiles one output neuron: `out = act(Σ w_j·x_j + b)`.
///
/// Inputs are expected in `r0..r{w.len()}` ([`convention::input`]); the
/// result lands in [`convention::output`].
///
/// # Panics
///
/// Panics if more than 12 weights are given (the register budget).
#[must_use]
pub fn compile_dense(
    weights: &[f64],
    bias: f64,
    activation: MappedActivation,
    format: QFormat,
) -> Program {
    assert!(weights.len() <= 12, "at most 12 inputs per cell");
    let mut p = Program::new();
    let scratch = convention::scratch();
    let out = convention::output();
    p.push(Instruction::ClearAcc);
    for (j, &w) in weights.iter().enumerate() {
        let w_raw = Fx::from_f64(w, format, Rounding::Nearest).raw();
        p.push(Instruction::Ldi(scratch, w_raw));
        p.push(Instruction::Mac(scratch, convention::input(j)));
    }
    p.push(Instruction::StoreAcc(out));
    let b_raw = Fx::from_f64(bias, format, Rounding::Nearest).raw();
    p.push(Instruction::Ldi(scratch, b_raw));
    p.push(Instruction::Add(out, out, scratch));
    match activation {
        MappedActivation::Sigmoid => p.push(Instruction::Sigmoid(out, out)),
        MappedActivation::Tanh => p.push(Instruction::Tanh(out, out)),
        MappedActivation::Identity => {}
    }
    p.push(Instruction::Halt);
    p
}

/// Compiles the distributed softmax for a west–east row of `n` cells, each
/// holding its logit in [`convention::value`]. Returns one program per
/// cell; results land in [`convention::output`].
///
/// Schedule (all scans single-cycle links):
/// 1. **max-scan east**: running maximum flows west→east;
/// 2. **broadcast west**: the global max returns east→west;
/// 3. each cell computes `e = exp(x − max)` on its NACU;
/// 4. **sum-scan east** and **broadcast west** of the denominator;
/// 5. each cell divides `e / Σe` on the shared divider.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn compile_softmax_row(n: usize) -> Vec<Program> {
    assert!(n > 0, "softmax over an empty row");
    let x = convention::value();
    let acc = convention::scratch2();
    let out = convention::output();
    (0..n)
        .map(|i| {
            let first = i == 0;
            let last = i == n - 1;
            let mut p = Program::new();
            // 1/2: max-scan east, broadcast west.
            if first {
                p.push(Instruction::Mov(acc, x));
            } else {
                p.push(Instruction::Recv(acc, Direction::West));
                p.push(Instruction::Max(acc, acc, x));
            }
            if !last {
                p.push(Instruction::Send(Direction::East, acc));
                p.push(Instruction::Recv(acc, Direction::East));
            }
            if !first {
                p.push(Instruction::Send(Direction::West, acc));
            }
            // 3: e = exp(x − max); `acc` now holds the global max.
            p.push(Instruction::Sub(out, x, acc));
            p.push(Instruction::Exp(out, out));
            // 4: sum-scan east, broadcast west.
            if first {
                p.push(Instruction::Mov(acc, out));
            } else {
                p.push(Instruction::Recv(acc, Direction::West));
                p.push(Instruction::Add(acc, acc, out));
            }
            if !last {
                p.push(Instruction::Send(Direction::East, acc));
                p.push(Instruction::Recv(acc, Direction::East));
            }
            if !first {
                p.push(Instruction::Send(Direction::West, acc));
            }
            // 5: normalise.
            p.push(Instruction::Div(out, out, acc));
            p.push(Instruction::Halt);
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use nacu::{Nacu, NacuConfig};
    use std::sync::Arc;

    fn fabric(rows: usize, cols: usize) -> Fabric {
        Fabric::new(
            rows,
            cols,
            Arc::new(Nacu::new(NacuConfig::paper_16bit()).unwrap()),
        )
    }

    #[test]
    fn dense_cell_is_bit_identical_to_the_nn_layer() {
        use nacu_nn::activation::{NacuActivation, Nonlinearity};
        use nacu_nn::dense::{Dense, LayerActivation};

        let weights = [0.5, -0.75, 0.25];
        let bias = 0.125;
        let inputs = [1.0, 2.0, -0.5];
        let mut f = fabric(1, 1);
        let fmt = f.cell((0, 0)).format();
        // Load inputs, run the compiled neuron.
        for (j, &v) in inputs.iter().enumerate() {
            let q = f.cell((0, 0)).quantize(v);
            f.cell_mut((0, 0)).set_reg(convention::input(j), q);
        }
        f.load(
            (0, 0),
            compile_dense(&weights, bias, MappedActivation::Sigmoid, fmt),
        );
        f.run_to_quiescence(100);
        let fabric_out = f.cell((0, 0)).reg(convention::output());
        // Reference: the nn crate's layer with the same NACU.
        let layer = Dense::from_f64(1, 3, &weights, &[bias], LayerActivation::Sigmoid, fmt);
        let nl = NacuActivation::paper_16bit();
        let x = nacu_nn::tensor::quantize_vec(&inputs, fmt);
        let golden = layer.forward(&x, &nl as &dyn Nonlinearity)[0];
        assert_eq!(fabric_out, golden, "fabric neuron must be bit-identical");
    }

    #[test]
    fn softmax_row_matches_the_reference_distribution() {
        let logits = [1.5_f64, -0.5, 3.0, 0.0];
        let mut f = fabric(1, logits.len());
        for (i, &v) in logits.iter().enumerate() {
            let q = f.cell((0, i)).quantize(v);
            f.cell_mut((0, i)).set_reg(convention::value(), q);
        }
        for (i, p) in compile_softmax_row(logits.len()).into_iter().enumerate() {
            f.load((0, i), p);
        }
        f.run_to_quiescence(500);
        let golden = nacu_funcapprox::reference::softmax(&logits);
        let mut sum = 0.0;
        for (i, want) in golden.iter().enumerate() {
            let got = f.cell((0, i)).reg(convention::output()).to_f64();
            assert!(
                (got - want).abs() < 0.02,
                "cell {i}: {got} vs reference {want}"
            );
            sum += got;
        }
        assert!((sum - 1.0).abs() < 0.03, "probabilities sum to {sum}");
    }

    #[test]
    fn softmax_row_handles_saturating_logits() {
        // The Eq. 13 point, now distributed: inputs at the format ceiling.
        let mut f = fabric(1, 3);
        let fmt = f.cell((0, 0)).format();
        let raws = [fmt.max_raw(), fmt.max_raw(), fmt.min_raw()];
        for (i, &raw) in raws.iter().enumerate() {
            let v = nacu_fixed::Fx::from_raw(raw, fmt).unwrap();
            f.cell_mut((0, i)).set_reg(convention::value(), v);
        }
        for (i, p) in compile_softmax_row(3).into_iter().enumerate() {
            f.load((0, i), p);
        }
        f.run_to_quiescence(500);
        let p0 = f.cell((0, 0)).reg(convention::output()).to_f64();
        let p2 = f.cell((0, 2)).reg(convention::output()).to_f64();
        assert!(
            (p0 - 0.5).abs() < 0.02,
            "tied max logits split evenly: {p0}"
        );
        assert!(p2 < 0.01, "the tiny logit vanishes: {p2}");
    }

    #[test]
    fn single_cell_softmax_degenerates_to_one() {
        let mut f = fabric(1, 1);
        let q = f.cell((0, 0)).quantize(-2.0);
        f.cell_mut((0, 0)).set_reg(convention::value(), q);
        f.load((0, 0), compile_softmax_row(1).remove(0));
        f.run_to_quiescence(100);
        let p = f.cell((0, 0)).reg(convention::output()).to_f64();
        assert!((p - 1.0).abs() < 0.01, "p = {p}");
    }

    #[test]
    #[should_panic(expected = "at most 12 inputs")]
    fn oversized_dense_panics() {
        let fmt = nacu_fixed::QFormat::new(4, 11).unwrap();
        let _ = compile_dense(&[0.0; 13], 0.0, MappedActivation::Identity, fmt);
    }
}
