//! A two-way assembler for cell programs.
//!
//! The [`crate::isa::Instruction`] `Display` impl already prints assembly;
//! this module parses it back, so programs can live as inspectable text in
//! examples and tests (`parse` ∘ `to_string` = identity).

use std::error::Error;
use std::fmt;

use crate::isa::{Direction, Instruction, Program, Reg};

/// Error produced when a line cannot be assembled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgramError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseProgramError {}

fn parse_reg(token: &str) -> Result<Reg, String> {
    let trimmed = token.trim().trim_end_matches(',');
    let idx = trimmed
        .strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| (n as usize) < Reg::COUNT)
        .ok_or_else(|| format!("not a register: {trimmed:?}"))?;
    Ok(Reg::new(idx))
}

fn parse_dir(token: &str) -> Result<Direction, String> {
    match token.trim().trim_end_matches(',') {
        "west" => Ok(Direction::West),
        "east" => Ok(Direction::East),
        "north" => Ok(Direction::North),
        "south" => Ok(Direction::South),
        other => Err(format!("not a direction: {other:?}")),
    }
}

fn parse_imm(token: &str) -> Result<i64, String> {
    let trimmed = token.trim().trim_end_matches(',');
    trimmed
        .parse::<i64>()
        .map_err(|_| format!("not an immediate: {trimmed:?}"))
}

fn parse_line(line: &str) -> Result<Option<Instruction>, String> {
    // Strip comments (`;` or `#`) and blanks.
    let code = line.split([';', '#']).next().unwrap_or("").trim();
    if code.is_empty() {
        return Ok(None);
    }
    let mut parts = code.split_whitespace();
    let mnemonic = parts.next().expect("non-empty line has a mnemonic");
    let rest: Vec<&str> = parts.collect();
    let arg = |i: usize| -> Result<&str, String> {
        rest.get(i)
            .copied()
            .ok_or_else(|| format!("{mnemonic}: missing operand {i}"))
    };
    let ins = match mnemonic {
        "ldi" => Instruction::Ldi(parse_reg(arg(0)?)?, parse_imm(arg(1)?)?),
        "mov" => Instruction::Mov(parse_reg(arg(0)?)?, parse_reg(arg(1)?)?),
        "clr" => Instruction::ClearAcc,
        "mac" => Instruction::Mac(parse_reg(arg(0)?)?, parse_reg(arg(1)?)?),
        "sta" => Instruction::StoreAcc(parse_reg(arg(0)?)?),
        "add" => Instruction::Add(
            parse_reg(arg(0)?)?,
            parse_reg(arg(1)?)?,
            parse_reg(arg(2)?)?,
        ),
        "sub" => Instruction::Sub(
            parse_reg(arg(0)?)?,
            parse_reg(arg(1)?)?,
            parse_reg(arg(2)?)?,
        ),
        "max" => Instruction::Max(
            parse_reg(arg(0)?)?,
            parse_reg(arg(1)?)?,
            parse_reg(arg(2)?)?,
        ),
        "div" => Instruction::Div(
            parse_reg(arg(0)?)?,
            parse_reg(arg(1)?)?,
            parse_reg(arg(2)?)?,
        ),
        "sig" => Instruction::Sigmoid(parse_reg(arg(0)?)?, parse_reg(arg(1)?)?),
        "tnh" => Instruction::Tanh(parse_reg(arg(0)?)?, parse_reg(arg(1)?)?),
        "exp" => Instruction::Exp(parse_reg(arg(0)?)?, parse_reg(arg(1)?)?),
        "snd" => Instruction::Send(parse_dir(arg(0)?)?, parse_reg(arg(1)?)?),
        "rcv" => Instruction::Recv(parse_reg(arg(0)?)?, parse_dir(arg(1)?)?),
        "hlt" => Instruction::Halt,
        other => return Err(format!("unknown mnemonic: {other:?}")),
    };
    Ok(Some(ins))
}

/// Assembles a multi-line program. Blank lines and `;`/`#` comments are
/// ignored.
///
/// # Errors
///
/// Returns [`ParseProgramError`] with the offending line number.
pub fn parse(text: &str) -> Result<Program, ParseProgramError> {
    let mut program = Program::new();
    for (i, line) in text.lines().enumerate() {
        match parse_line(line) {
            Ok(Some(ins)) => program.push(ins),
            Ok(None) => {}
            Err(reason) => {
                return Err(ParseProgramError {
                    line: i + 1,
                    reason,
                })
            }
        }
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_instruction() {
        let r = Reg::new;
        let all = vec![
            Instruction::Ldi(r(1), -2048),
            Instruction::Mov(r(2), r(1)),
            Instruction::ClearAcc,
            Instruction::Mac(r(1), r(2)),
            Instruction::StoreAcc(r(3)),
            Instruction::Add(r(4), r(3), r(1)),
            Instruction::Sub(r(5), r(4), r(1)),
            Instruction::Max(r(6), r(5), r(4)),
            Instruction::Div(r(7), r(6), r(5)),
            Instruction::Sigmoid(r(8), r(7)),
            Instruction::Tanh(r(9), r(8)),
            Instruction::Exp(r(10), r(9)),
            Instruction::Send(Direction::South, r(10)),
            Instruction::Recv(r(11), Direction::North),
            Instruction::Halt,
        ];
        let program = Program::from_instructions(all.clone());
        let text = program.to_string();
        let back = parse(&text).expect("own output parses");
        assert_eq!(back, program);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let p = parse("; dot product\n\nclr\nmac r0, r1  # partial\nhlt\n").unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("clr\nfrobnicate r1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unknown mnemonic"));
        let err = parse("ldi r99, 0\n").unwrap_err();
        assert!(err.reason.contains("not a register"));
        let err = parse("snd up, r1\n").unwrap_err();
        assert!(err.reason.contains("not a direction"));
        let err = parse("mac r0\n").unwrap_err();
        assert!(err.reason.contains("missing operand"));
    }
}
