//! The processing-cell instruction set.
//!
//! Deliberately minimal: enough to express MAC-heavy layer kernels, the
//! non-linear activations, and neighbour communication. Each instruction
//! retires in one cycle except the NACU ops, which stall the cell for
//! their Table I latency (3 cycles for σ/tanh, 8 for exp — modelled in
//! [`crate::cell`]).

use std::fmt;

/// A cell register, `r0`–`r15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers per cell.
    pub const COUNT: usize = 16;

    /// Creates a register handle.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < Self::COUNT,
            "register index out of range"
        );
        Self(index)
    }

    /// The register index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Neighbour directions of the 2-D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Decreasing column.
    West,
    /// Increasing column.
    East,
    /// Decreasing row.
    North,
    /// Increasing row.
    South,
}

impl Direction {
    /// All four directions.
    #[must_use]
    pub fn all() -> [Direction; 4] {
        [
            Direction::West,
            Direction::East,
            Direction::North,
            Direction::South,
        ]
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Direction::West => "west",
            Direction::East => "east",
            Direction::North => "north",
            Direction::South => "south",
        };
        f.write_str(name)
    }
}

/// One cell instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Instruction {
    /// `ldi rd, raw` — load an immediate raw code (datapath format).
    Ldi(Reg, i64),
    /// `mov rd, rs`.
    Mov(Reg, Reg),
    /// `clr` — clear the MAC accumulator.
    ClearAcc,
    /// `mac ra, rb` — accumulate `ra·rb` into the MAC.
    Mac(Reg, Reg),
    /// `sta rd` — store the accumulator into a register.
    StoreAcc(Reg),
    /// `add rd, ra, rb` — saturating add.
    Add(Reg, Reg, Reg),
    /// `sig rd, rs` — NACU sigmoid (3-cycle latency).
    Sigmoid(Reg, Reg),
    /// `tnh rd, rs` — NACU tanh (3-cycle latency).
    Tanh(Reg, Reg),
    /// `exp rd, rs` — NACU normalised exponential (8-cycle latency).
    Exp(Reg, Reg),
    /// `div rd, ra, rb` — restoring divide through the shared divider
    /// (8-cycle latency; the softmax normalisation step).
    Div(Reg, Reg, Reg),
    /// `max rd, ra, rb` — signed maximum (the softmax max-reduce).
    Max(Reg, Reg, Reg),
    /// `sub rd, ra, rb` — saturating subtract.
    Sub(Reg, Reg, Reg),
    /// `snd dir, rs` — push a word to a neighbour mailbox (1 cycle).
    Send(Direction, Reg),
    /// `rcv rd, dir` — pop from a mailbox; stalls until a word arrives.
    Recv(Reg, Direction),
    /// `hlt` — stop the cell.
    Halt,
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Ldi(d, v) => write!(f, "ldi {d}, {v}"),
            Instruction::Mov(d, s) => write!(f, "mov {d}, {s}"),
            Instruction::ClearAcc => write!(f, "clr"),
            Instruction::Mac(a, b) => write!(f, "mac {a}, {b}"),
            Instruction::StoreAcc(d) => write!(f, "sta {d}"),
            Instruction::Add(d, a, b) => write!(f, "add {d}, {a}, {b}"),
            Instruction::Sigmoid(d, s) => write!(f, "sig {d}, {s}"),
            Instruction::Tanh(d, s) => write!(f, "tnh {d}, {s}"),
            Instruction::Exp(d, s) => write!(f, "exp {d}, {s}"),
            Instruction::Div(d, a, b) => write!(f, "div {d}, {a}, {b}"),
            Instruction::Max(d, a, b) => write!(f, "max {d}, {a}, {b}"),
            Instruction::Sub(d, a, b) => write!(f, "sub {d}, {a}, {b}"),
            Instruction::Send(dir, s) => write!(f, "snd {dir}, {s}"),
            Instruction::Recv(d, dir) => write!(f, "rcv {d}, {dir}"),
            Instruction::Halt => write!(f, "hlt"),
        }
    }
}

/// A cell program: a plain instruction sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    instructions: Vec<Instruction>,
}

impl Program {
    /// An empty program (a halted cell).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from an instruction list.
    #[must_use]
    pub fn from_instructions(instructions: Vec<Instruction>) -> Self {
        Self { instructions }
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: Instruction) {
        self.instructions.push(instruction);
    }

    /// The instruction at `pc`, if any.
    #[must_use]
    pub fn fetch(&self, pc: usize) -> Option<Instruction> {
        self.instructions.get(pc).copied()
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` if the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> impl Iterator<Item = &Instruction> {
        self.instructions.iter()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ins in &self.instructions {
            writeln!(f, "{ins}")?;
        }
        Ok(())
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<I: IntoIterator<Item = Instruction>>(iter: I) -> Self {
        Self {
            instructions: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_bounds() {
        assert_eq!(Reg::new(0).index(), 0);
        assert_eq!(Reg::new(15).index(), 15);
        assert_eq!(Reg::new(7).to_string(), "r7");
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn register_16_panics() {
        let _ = Reg::new(16);
    }

    #[test]
    fn display_is_assembly_syntax() {
        let r = Reg::new;
        assert_eq!(Instruction::Ldi(r(1), -2048).to_string(), "ldi r1, -2048");
        assert_eq!(Instruction::Mac(r(2), r(3)).to_string(), "mac r2, r3");
        assert_eq!(Instruction::Sigmoid(r(0), r(1)).to_string(), "sig r0, r1");
        assert_eq!(
            Instruction::Send(Direction::East, r(5)).to_string(),
            "snd east, r5"
        );
        assert_eq!(Instruction::Halt.to_string(), "hlt");
    }

    #[test]
    fn program_collects_and_fetches() {
        let p: Program = [Instruction::ClearAcc, Instruction::Halt]
            .into_iter()
            .collect();
        assert_eq!(p.len(), 2);
        assert_eq!(p.fetch(0), Some(Instruction::ClearAcc));
        assert_eq!(p.fetch(2), None);
        assert!(!p.is_empty());
    }
}
