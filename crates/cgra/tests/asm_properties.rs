//! Property tests for the assembler and cell semantics.

use nacu_cgra::cell::CellState;
use nacu_cgra::isa::{Direction, Instruction, Program, Reg};
use nacu_cgra::{asm, Cell};
use proptest::prelude::*;
use std::sync::Arc;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn any_dir() -> impl Strategy<Value = Direction> {
    prop_oneof![
        Just(Direction::West),
        Just(Direction::East),
        Just(Direction::North),
        Just(Direction::South),
    ]
}

fn any_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (any_reg(), -40_000_i64..40_000).prop_map(|(r, v)| Instruction::Ldi(r, v)),
        (any_reg(), any_reg()).prop_map(|(a, b)| Instruction::Mov(a, b)),
        Just(Instruction::ClearAcc),
        (any_reg(), any_reg()).prop_map(|(a, b)| Instruction::Mac(a, b)),
        any_reg().prop_map(Instruction::StoreAcc),
        (any_reg(), any_reg(), any_reg()).prop_map(|(d, a, b)| Instruction::Add(d, a, b)),
        (any_reg(), any_reg(), any_reg()).prop_map(|(d, a, b)| Instruction::Sub(d, a, b)),
        (any_reg(), any_reg(), any_reg()).prop_map(|(d, a, b)| Instruction::Max(d, a, b)),
        (any_reg(), any_reg(), any_reg()).prop_map(|(d, a, b)| Instruction::Div(d, a, b)),
        (any_reg(), any_reg()).prop_map(|(d, s)| Instruction::Sigmoid(d, s)),
        (any_reg(), any_reg()).prop_map(|(d, s)| Instruction::Tanh(d, s)),
        (any_reg(), any_reg()).prop_map(|(d, s)| Instruction::Exp(d, s)),
        (any_dir(), any_reg()).prop_map(|(d, r)| Instruction::Send(d, r)),
        Just(Instruction::Halt),
    ]
}

proptest! {
    #[test]
    fn assembler_round_trips_arbitrary_programs(
        instructions in proptest::collection::vec(any_instruction(), 0..40),
    ) {
        let program = Program::from_instructions(instructions);
        let text = program.to_string();
        let back = asm::parse(&text).expect("own output parses");
        prop_assert_eq!(back, program);
    }

    #[test]
    fn receive_free_programs_always_halt(
        instructions in proptest::collection::vec(any_instruction(), 0..30),
    ) {
        // Without `rcv`, a straight-line program must halt within
        // (instructions × max-latency) cycles, whatever it computes.
        let nacu = Arc::new(
            nacu::Nacu::new(nacu::NacuConfig::paper_16bit()).expect("paper config"),
        );
        let mut cell = Cell::new(nacu);
        let budget = (instructions.len() as u32 + 1) * 9;
        cell.load_program(Program::from_instructions(instructions));
        for _ in 0..budget {
            cell.tick();
        }
        prop_assert_eq!(cell.state(), CellState::Halted);
    }

    #[test]
    fn register_values_always_fit_the_datapath_format(
        instructions in proptest::collection::vec(any_instruction(), 0..30),
        probe in 0u8..16,
    ) {
        let nacu = Arc::new(
            nacu::Nacu::new(nacu::NacuConfig::paper_16bit()).expect("paper config"),
        );
        let fmt = nacu.config().format;
        let mut cell = Cell::new(Arc::clone(&nacu));
        let budget = (instructions.len() as u32 + 1) * 9;
        cell.load_program(Program::from_instructions(instructions));
        for _ in 0..budget {
            cell.tick();
        }
        let v = cell.reg(Reg::new(probe));
        prop_assert!(fmt.contains_raw(v.raw()));
    }
}
