//! The exp-based σ/tanh of Gomar et al. \[11\], built on the multiplier-less
//! exponential of \[12\].
//!
//! \[12\] computes `e^u = 2^{u·log₂e}` with the shift-add constant
//! `1.44140625` and the first-order fractional power `2^F ≈ 1 + F`
//! (§VI: "the fractional part is approximated as the line 1+x, and the
//! 2nd power of the integer part is implemented using bit shifts").
//!
//! \[11\] then forms `σ(x) = 1/(1 + e^{−x})` with a divider and
//! `tanh(x) = 2σ(2x) − 1` (Eq. 3). The paper reports RMSE `9.1×10⁻³`
//! (σ) and `1.77×10⁻²` (tanh) — an order of magnitude worse than NACU,
//! which is exactly what the `2^F ≈ 1+F` kink costs.

use nacu_fixed::{Fx, QFormat};

use crate::exp2;
use crate::{Comparator, TargetFunc};

/// Working/output format: 14 bits (`Q3.10`), the top of the 6–14 bit range
/// Table I lists for \[11\].
fn fmt() -> QFormat {
    QFormat::new(3, 10).expect("Q3.10 is valid")
}

/// `e^{-u}` for `u ≥ 0` via the \[12\] recipe, on raw codes with `frac`
/// fractional bits.
fn exp_neg_gomar(u_raw: i64, frac: u32) -> i64 {
    debug_assert!(u_raw >= 0);
    let one = 1_i64 << frac;
    // t = −u·log2e via shift-add (negative).
    let t = exp2::mul_log2e_shift_add(-u_raw);
    let (i, f) = exp2::split(t, frac);
    // 2^F ≈ 1 + F, then shift right by −I.
    exp2::apply_negative_exponent(one + f, i)
}

/// σ on raw codes: `1/(1 + e^{−|x|})` with a restoring divide, mirrored by
/// Eq. 4 for negative inputs.
fn sigmoid_raw(x_raw: i64, frac: u32) -> i64 {
    let one = 1_i64 << frac;
    let mag = x_raw.abs();
    let e = exp_neg_gomar(mag, frac);
    let denom = one + e;
    let q = nacu::divider::restoring_divide(one, denom, frac).expect("denom ≥ 1");
    if x_raw >= 0 {
        q
    } else {
        one - q
    }
}

/// The σ comparator of \[11\].
#[derive(Debug, Clone, Copy, Default)]
pub struct GomarSigmoid {
    _private: (),
}

impl GomarSigmoid {
    /// Creates the design at its published 14-bit width.
    #[must_use]
    pub fn new() -> Self {
        Self { _private: () }
    }
}

impl Comparator for GomarSigmoid {
    fn citation(&self) -> &'static str {
        "[11]"
    }

    fn implementation(&self) -> &'static str {
        "based on e^x"
    }

    fn func(&self) -> TargetFunc {
        TargetFunc::Sigmoid
    }

    fn input_format(&self) -> QFormat {
        fmt()
    }

    fn output_format(&self) -> QFormat {
        fmt()
    }

    fn eval(&self, x: Fx) -> Fx {
        assert_eq!(x.format(), fmt(), "input format mismatch");
        let y = sigmoid_raw(x.raw(), fmt().frac_bits());
        Fx::from_raw_saturating(y, fmt())
    }
}

/// The tanh comparator of \[11\]: `tanh(x) = 2σ(2x) − 1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GomarTanh {
    _private: (),
}

impl GomarTanh {
    /// Creates the design at its published 14-bit width.
    #[must_use]
    pub fn new() -> Self {
        Self { _private: () }
    }
}

impl Comparator for GomarTanh {
    fn citation(&self) -> &'static str {
        "[11]"
    }

    fn implementation(&self) -> &'static str {
        "based on e^x"
    }

    fn func(&self) -> TargetFunc {
        TargetFunc::Tanh
    }

    fn input_format(&self) -> QFormat {
        fmt()
    }

    fn output_format(&self) -> QFormat {
        fmt()
    }

    fn eval(&self, x: Fx) -> Fx {
        assert_eq!(x.format(), fmt(), "input format mismatch");
        let f = fmt().frac_bits();
        let one = 1_i64 << f;
        let doubled = fmt().saturate_raw(2 * x.raw() as i128);
        let s = sigmoid_raw(doubled, f);
        Fx::from_raw_saturating(2 * s - one, fmt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;
    use nacu_fixed::Rounding;

    #[test]
    fn exp_kink_error_is_percent_level() {
        // 2^F ≈ 1+F is worst near F ≈ 0.53 (≈ 6% relative).
        let f = 10u32;
        let one = 1_i64 << f;
        let mut worst = 0.0_f64;
        for u in 0..(4 * one) {
            let got = exp_neg_gomar(u, f) as f64 / one as f64;
            let want = (-(u as f64) / one as f64).exp();
            worst = worst.max((got - want).abs());
        }
        assert!(worst > 5e-3, "the [12] approximation has a visible kink");
        assert!(worst < 5e-2, "but stays in the percent decade: {worst}");
    }

    #[test]
    fn sigma_rmse_lands_in_the_published_decade() {
        // [11] reports RMSE 9.1e-3 for σ.
        let report = measure(&GomarSigmoid::new());
        assert!(
            report.rmse > 1e-3 && report.rmse < 3e-2,
            "rmse {}",
            report.rmse
        );
        assert!(report.correlation > 0.99);
    }

    #[test]
    fn tanh_rmse_is_roughly_double_sigma() {
        // Eq. 3 doubles the σ error: [11] reports 1.77e-2 vs 9.1e-3.
        let sig = measure(&GomarSigmoid::new());
        let tanh = measure(&GomarTanh::new());
        assert!(tanh.rmse > sig.rmse, "{} vs {}", tanh.rmse, sig.rmse);
        assert!(tanh.rmse < 4.0 * sig.rmse);
    }

    #[test]
    fn symmetry_holds() {
        let d = GomarSigmoid::new();
        let f = fmt();
        let x = Fx::from_f64(1.3, f, Rounding::Nearest);
        let nx = Fx::from_f64(-1.3, f, Rounding::Nearest);
        let sum = d.eval(x).to_f64() + d.eval(nx).to_f64();
        assert!((sum - 1.0).abs() < 2e-3, "σ(x)+σ(−x) = {sum}");
    }

    #[test]
    fn known_points() {
        let s = GomarSigmoid::new();
        let t = GomarTanh::new();
        let f = fmt();
        let zero = Fx::zero(f);
        assert!((s.eval(zero).to_f64() - 0.5).abs() < 5e-3);
        assert!(t.eval(zero).to_f64().abs() < 5e-3);
        let big = Fx::from_f64(7.9, f, Rounding::Nearest);
        assert!((s.eval(big).to_f64() - 1.0).abs() < 5e-3);
        assert!((t.eval(big).to_f64() - 1.0).abs() < 5e-3);
    }
}
