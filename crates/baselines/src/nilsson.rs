//! The 6th-order Taylor exponential of Nilsson et al. \[13\]: 18 bits.
//!
//! §VI: "\[13\] makes use of a 6th order Taylor expansion to describe the
//! whole exponential curve". With base-2 range reduction the fractional
//! power `2^F = e^{F·ln2}` is a single 6th-order polynomial over `[0, 1)`
//! — accurate to ~2×10⁻⁵ before quantisation, which is why Fig. 6c shows
//! NACU ~10× worse (NACU spends only 16 bits and a 1st-order model).

use nacu_fixed::{Fx, QFormat, Rounding};

use crate::exp2;
use crate::{Comparator, TargetFunc};

/// 18-bit input `Q4.13` (range ±16, matching NACU's exp domain).
fn in_fmt() -> QFormat {
    QFormat::new(4, 13).expect("Q4.13 is valid")
}

/// 18-bit output `Q1.16` (range [0, 1] plus headroom).
fn out_fmt() -> QFormat {
    QFormat::new(1, 16).expect("Q1.16 is valid")
}

/// Taylor order.
const ORDER: usize = 6;

/// The \[13\] comparator.
#[derive(Debug, Clone)]
pub struct NilssonTaylor6 {
    /// Raw Horner coefficients of `2^F = Σ (ln2)^k F^k / k!` at the
    /// working scale (highest order first).
    coeffs: Vec<i64>,
    work_frac: u32,
}

impl NilssonTaylor6 {
    /// Builds the published configuration (coefficients quantised at the
    /// 18-bit working precision plus two guard bits).
    #[must_use]
    pub fn new() -> Self {
        let work_frac = out_fmt().frac_bits() + 2;
        let mut coeffs = Vec::with_capacity(ORDER + 1);
        let ln2 = std::f64::consts::LN_2;
        let mut factorial = 1.0;
        for k in 0..=ORDER {
            if k > 0 {
                factorial *= k as f64;
            }
            let c = ln2.powi(k as i32) / factorial;
            coeffs.push(Rounding::Nearest.quantize(c, work_frac) as i64);
        }
        coeffs.reverse(); // Horner order: c6, c5, ..., c0.
        Self { coeffs, work_frac }
    }

    /// `2^F` for `F_raw ∈ [0, 2^frac)` via fixed-point Horner evaluation.
    fn pow2_frac(&self, f_raw: i64, in_frac: u32) -> i64 {
        // Align F to the working scale.
        let f_work = if self.work_frac >= in_frac {
            f_raw << (self.work_frac - in_frac)
        } else {
            f_raw >> (in_frac - self.work_frac)
        };
        let mut acc: i128 = self.coeffs[0] as i128;
        for &c in &self.coeffs[1..] {
            acc = Rounding::Nearest.shift_right(acc * f_work as i128, self.work_frac) + c as i128;
        }
        acc as i64
    }
}

impl Default for NilssonTaylor6 {
    fn default() -> Self {
        Self::new()
    }
}

impl Comparator for NilssonTaylor6 {
    fn citation(&self) -> &'static str {
        "[13]"
    }

    fn implementation(&self) -> &'static str {
        "6th-order Taylor"
    }

    fn func(&self) -> TargetFunc {
        TargetFunc::Exp
    }

    fn input_format(&self) -> QFormat {
        in_fmt()
    }

    fn output_format(&self) -> QFormat {
        out_fmt()
    }

    fn eval(&self, x: Fx) -> Fx {
        assert_eq!(x.format(), in_fmt(), "input format mismatch");
        let in_frac = in_fmt().frac_bits();
        let clamped = x.raw().min(0);
        let t = exp2::mul_log2e(clamped, in_frac);
        let (i, f) = exp2::split(t, in_frac);
        let p = self.pow2_frac(f, in_frac);
        let shifted = exp2::apply_negative_exponent(p, i);
        // Working scale → output scale.
        let y =
            Rounding::Nearest.shift_right(shifted as i128, self.work_frac - out_fmt().frac_bits());
        Fx::from_raw_saturating(y as i64, out_fmt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;

    #[test]
    fn pow2_polynomial_is_tight_over_unit_interval() {
        let d = NilssonTaylor6::new();
        let in_frac = in_fmt().frac_bits();
        let one = 1_i64 << in_frac;
        let scale = f64::from(1u32 << d.work_frac);
        let mut worst = 0.0_f64;
        for f in (0..one).step_by(7) {
            let got = d.pow2_frac(f, in_frac) as f64 / scale;
            let want = (f as f64 / one as f64).exp2();
            worst = worst.max((got - want).abs());
        }
        assert!(worst < 1e-4, "worst {worst}");
    }

    #[test]
    fn full_range_error_is_an_order_below_nacu() {
        let report = measure(&NilssonTaylor6::new());
        // Fig. 6c: [13]/[14] are ~10× better than 16-bit NACU (~2e-3).
        assert!(report.max_error < 4e-4, "max {}", report.max_error);
        assert!(report.correlation > 0.999_99);
    }

    #[test]
    fn known_points() {
        let d = NilssonTaylor6::new();
        let f = in_fmt();
        assert!((d.eval(Fx::zero(f)).to_f64() - 1.0).abs() < 1e-3);
        for v in [-0.5, -1.0, -4.0, -10.0] {
            let got = d.eval(Fx::from_f64(v, f, Rounding::Nearest)).to_f64();
            assert!((got - v.exp()).abs() < 1e-3, "e^{v}: {got}");
        }
    }

    #[test]
    fn positive_inputs_clamp_to_one() {
        let d = NilssonTaylor6::new();
        let f = in_fmt();
        let y = d.eval(Fx::from_f64(2.0, f, Rounding::Nearest)).to_f64();
        assert!((y - 1.0).abs() < 1e-3);
    }
}
