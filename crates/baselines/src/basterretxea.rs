//! The recursive centred-interpolation σ of Basterretxea et al. \[7\].
//!
//! \[7\] builds a PWL approximation by **recursive refinement**: starting
//! from one segment spanning the whole range, each recursion level splits
//! every segment at its midpoint and pulls the new vertex halfway towards
//! the true function value (the "centred linear interpolation" CRI
//! scheme, divider-free because every step is an average — a right
//! shift). The recursion depth dials accuracy against table size, the
//! "progressively refine and dimension the number of segments" of §VI.

use nacu_fixed::{Fx, QFormat, Rounding};
use nacu_funcapprox::reference::sigmoid;

use crate::{Comparator, TargetFunc};

/// 16-bit `Q3.12` (the paper's experiments use a ±8 range).
fn fmt() -> QFormat {
    QFormat::new(3, 12).expect("Q3.12 is valid")
}

/// Recursion depth: 2^q segments over the positive range.
const DEPTH: u32 = 4;

/// The \[7\] comparator.
#[derive(Debug, Clone)]
pub struct BasterretxeaCri {
    /// Vertex ordinates at the 2^DEPTH + 1 uniform breakpoints.
    vertices: Vec<f64>,
    /// Half-residual triangular corrections, one per finest segment.
    corrections: Vec<f64>,
}

impl BasterretxeaCri {
    /// Builds the depth-[`DEPTH`] recursive interpolation.
    #[must_use]
    pub fn new() -> Self {
        Self::with_depth(DEPTH)
    }

    /// Builds an arbitrary-depth variant (exposed for the convergence
    /// tests and the ablation bench).
    ///
    /// Each recursion level doubles the breakpoint count (new breakpoints
    /// take the true function value — the interpolation step); the final
    /// level applies the *centred* correction: instead of a last full
    /// subdivision, each finest segment adds half its midpoint residual as
    /// a triangular bump — one add and one shift, no extra table entry.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0 or greater than 12.
    #[must_use]
    pub fn with_depth(depth: u32) -> Self {
        assert!((1..=12).contains(&depth), "depth must be 1..=12");
        let hi = fmt().max_value();
        let segments = 1usize << depth;
        let f = fmt();
        let quant = |v: f64| Fx::from_f64(v, f, Rounding::Nearest).to_f64();
        let vertices: Vec<f64> = (0..=segments)
            .map(|k| quant(sigmoid(hi * k as f64 / segments as f64)))
            .collect();
        // Centred-interpolation correction per finest segment: half the
        // midpoint residual, applied as a triangular profile.
        let corrections: Vec<f64> = (0..segments)
            .map(|k| {
                let seg_w = hi / segments as f64;
                let mid_x = seg_w * (k as f64 + 0.5);
                let chord_mid = 0.5 * (vertices[k] + vertices[k + 1]);
                quant(0.5 * (sigmoid(mid_x) - chord_mid))
            })
            .collect();
        Self {
            vertices,
            corrections,
        }
    }

    /// Number of linear segments.
    #[must_use]
    pub fn segments(&self) -> usize {
        self.vertices.len() - 1
    }

    fn positive(&self, mag: f64) -> f64 {
        let hi = fmt().max_value();
        let segments = self.segments() as f64;
        let pos = (mag / hi * segments).min(segments - 1e-9);
        let idx = pos as usize;
        let frac = pos - idx as f64;
        let chord = self.vertices[idx] * (1.0 - frac) + self.vertices[idx + 1] * frac;
        // Triangular centred correction: peaks at the segment midpoint.
        let triangle = 1.0 - (2.0 * frac - 1.0).abs();
        chord + self.corrections[idx] * triangle
    }
}

impl Default for BasterretxeaCri {
    fn default() -> Self {
        Self::new()
    }
}

impl Comparator for BasterretxeaCri {
    fn citation(&self) -> &'static str {
        "[7]"
    }

    fn implementation(&self) -> &'static str {
        "recursive PWL (CRI)"
    }

    fn func(&self) -> TargetFunc {
        TargetFunc::Sigmoid
    }

    fn input_format(&self) -> QFormat {
        fmt()
    }

    fn output_format(&self) -> QFormat {
        fmt()
    }

    fn eval(&self, x: Fx) -> Fx {
        assert_eq!(x.format(), fmt(), "input format mismatch");
        let mag = (x.raw().abs() as f64) * fmt().resolution();
        let y = self.positive(mag);
        let out = if x.raw() < 0 { 1.0 - y } else { y };
        Fx::from_f64(out, fmt(), Rounding::Nearest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;

    #[test]
    fn depth_grows_segments_exponentially() {
        assert_eq!(BasterretxeaCri::with_depth(1).segments(), 2);
        assert_eq!(BasterretxeaCri::with_depth(4).segments(), 16);
        assert_eq!(BasterretxeaCri::with_depth(6).segments(), 64);
    }

    #[test]
    fn each_recursion_level_refines_the_error() {
        let mut last = f64::INFINITY;
        for depth in [2, 4, 6] {
            let d = BasterretxeaCri::with_depth(depth);
            let err = measure_positive_err(&d);
            assert!(err < last, "depth {depth}: {err} vs {last}");
            last = err;
        }
    }

    fn measure_positive_err(d: &BasterretxeaCri) -> f64 {
        let f = fmt();
        let mut worst = 0.0_f64;
        for raw in (0..f.max_raw()).step_by(37) {
            let x = Fx::from_raw(raw, f).unwrap();
            worst = worst.max((d.eval(x).to_f64() - sigmoid(x.to_f64())).abs());
        }
        worst
    }

    #[test]
    fn default_depth_lands_in_the_published_decade() {
        // [7] reports maximum errors in the 1e-2..1e-3 decade for its
        // moderate-depth configurations.
        let report = measure(&BasterretxeaCri::new());
        assert!(
            report.max_error > 1e-4 && report.max_error < 3e-2,
            "max {}",
            report.max_error
        );
        assert!(report.correlation > 0.999);
    }

    #[test]
    fn symmetry_holds() {
        let d = BasterretxeaCri::new();
        let f = fmt();
        let x = Fx::from_f64(1.7, f, Rounding::Nearest);
        let nx = Fx::from_f64(-1.7, f, Rounding::Nearest);
        let sum = d.eval(x).to_f64() + d.eval(nx).to_f64();
        assert!((sum - 1.0).abs() < 2e-3);
    }

    #[test]
    #[should_panic(expected = "depth must be 1..=12")]
    fn zero_depth_panics() {
        let _ = BasterretxeaCri::with_depth(0);
    }
}
