//! The hybrid PWL + RALUT tanh of Namin et al. \[8\]: 10 bits.
//!
//! "A PWL gives a coarse approximation, and then a RALUT refines the tanh
//! curve" (§VI): a few shift-friendly linear segments produce a first
//! estimate; a small range-addressable correction table stores the
//! residual. We use 4 coarse segments and a 64-record correction table
//! (the paper does not publish its exact split; the accuracy lands at the
//! 10-bit grid either way).

use nacu_fixed::{Fx, QFormat, Rounding};

use crate::{Comparator, TargetFunc};

/// 10-bit input `Q2.7` (range ±4).
fn in_fmt() -> QFormat {
    QFormat::new(2, 7).expect("Q2.7 is valid")
}

/// 10-bit output `Q0.9`.
fn out_fmt() -> QFormat {
    QFormat::new(0, 9).expect("Q0.9 is valid")
}

/// Number of coarse PWL segments over `[0, 4)`.
const COARSE_SEGMENTS: usize = 4;
/// Number of residual-correction records (the paper keeps its exact
/// split private; 64 records land the hybrid at the 10-bit error floor).
const CORRECTION_RECORDS: usize = 64;

/// The \[8\] comparator.
#[derive(Debug, Clone)]
pub struct NaminHybrid {
    /// `(slope, bias)` of each coarse segment (power-of-two slopes).
    coarse: Vec<(f64, f64)>,
    /// Residual corrections, one per uniform correction bin.
    corrections: Vec<f64>,
}

impl NaminHybrid {
    /// Builds the hybrid tables.
    #[must_use]
    pub fn new() -> Self {
        let hi = in_fmt().max_value();
        let width = hi / COARSE_SEGMENTS as f64;
        // Coarse PWL: chord interpolation with slopes rounded to powers of
        // two (shift-only multipliers).
        let coarse: Vec<(f64, f64)> = (0..COARSE_SEGMENTS)
            .map(|i| {
                let lo = width * i as f64;
                let hi_seg = lo + width;
                let chord = (hi_seg.tanh() - lo.tanh()) / width;
                let slope = if chord < 2.0 * out_fmt().resolution() {
                    0.0
                } else {
                    2.0_f64.powf(chord.log2().round())
                };
                let bias = lo.tanh() - slope * lo;
                (slope, bias)
            })
            .collect();
        // Correction RALUT: per-bin mean residual on the output grid.
        let bin = hi / CORRECTION_RECORDS as f64;
        let corrections = (0..CORRECTION_RECORDS)
            .map(|i| {
                let centre = bin * (i as f64 + 0.5);
                let coarse_y = Self::coarse_eval(&coarse, width, centre);
                let residual = centre.tanh() - coarse_y;
                Fx::from_f64(residual, out_fmt(), Rounding::Nearest).to_f64()
            })
            .collect();
        Self {
            coarse,
            corrections,
        }
    }

    fn coarse_eval(coarse: &[(f64, f64)], width: f64, mag: f64) -> f64 {
        let idx = ((mag / width) as usize).min(coarse.len() - 1);
        let (slope, bias) = coarse[idx];
        slope * mag + bias
    }

    fn positive(&self, mag: f64) -> f64 {
        let hi = in_fmt().max_value();
        let width = hi / COARSE_SEGMENTS as f64;
        let bin = hi / CORRECTION_RECORDS as f64;
        let coarse_y = Self::coarse_eval(&self.coarse, width, mag);
        let idx = ((mag / bin) as usize).min(self.corrections.len() - 1);
        coarse_y + self.corrections[idx]
    }
}

impl Default for NaminHybrid {
    fn default() -> Self {
        Self::new()
    }
}

impl Comparator for NaminHybrid {
    fn citation(&self) -> &'static str {
        "[8]"
    }

    fn implementation(&self) -> &'static str {
        "PWL + RALUT"
    }

    fn func(&self) -> TargetFunc {
        TargetFunc::Tanh
    }

    fn input_format(&self) -> QFormat {
        in_fmt()
    }

    fn output_format(&self) -> QFormat {
        out_fmt()
    }

    fn eval(&self, x: Fx) -> Fx {
        assert_eq!(x.format(), in_fmt(), "input format mismatch");
        let mag = (x.raw().abs() as f64) * in_fmt().resolution();
        let y = self.positive(mag);
        let signed = if x.raw() < 0 { -y } else { y };
        Fx::from_f64(signed, out_fmt(), Rounding::Nearest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;

    #[test]
    fn correction_fixes_the_coarse_estimate() {
        let d = NaminHybrid::new();
        let hi = in_fmt().max_value();
        let width = hi / COARSE_SEGMENTS as f64;
        let mut coarse_worst = 0.0_f64;
        let mut hybrid_worst = 0.0_f64;
        for i in 0..512 {
            let x = hi * f64::from(i) / 512.0;
            let want = x.tanh();
            coarse_worst =
                coarse_worst.max((NaminHybrid::coarse_eval(&d.coarse, width, x) - want).abs());
            hybrid_worst = hybrid_worst.max((d.positive(x) - want).abs());
        }
        assert!(
            hybrid_worst < coarse_worst / 2.0,
            "hybrid {hybrid_worst} vs coarse {coarse_worst}"
        );
    }

    #[test]
    fn error_lands_in_the_ten_bit_decade() {
        let report = measure(&NaminHybrid::new());
        assert!(
            report.max_error > 1e-4 && report.max_error < 3e-2,
            "max {}",
            report.max_error
        );
        assert!(report.correlation > 0.999);
    }

    #[test]
    fn slopes_are_powers_of_two() {
        for (slope, _) in &NaminHybrid::new().coarse {
            if *slope != 0.0 {
                let l = slope.log2();
                assert!((l - l.round()).abs() < 1e-12, "slope {slope}");
            }
        }
    }

    #[test]
    fn odd_symmetry() {
        let d = NaminHybrid::new();
        let f = in_fmt();
        for v in [0.5, 1.5, 3.0] {
            let p = d.eval(Fx::from_f64(v, f, Rounding::Nearest)).to_f64();
            let n = d.eval(Fx::from_f64(-v, f, Rounding::Nearest)).to_f64();
            assert!((p + n).abs() < 2.0 * out_fmt().resolution(), "v={v}");
        }
    }
}
