//! The FPGA σ implementations of Tsmots et al. \[6\], 16-bit.
//!
//! Three variants appear in Table I:
//!
//! * a 7-segment **NUPWL** whose slopes are rounded to powers of two so the
//!   multiplications become shifts ("all the works mentioned above use
//!   coefficients that are powers of two", §VI) — the shift restriction is
//!   what costs it the ~10× max-error gap to NACU (§VII.A);
//! * a 4-interval **2nd-order Taylor** expansion;
//! * an optimised variant of the same Taylor design (re-centred expansion
//!   points, one extra pipeline cycle in Table I).

use nacu_fixed::{Fx, QFormat, Rounding};
use nacu_funcapprox::reference::RefFunc;
use nacu_funcapprox::segment::{self, FitMethod, Segment, SegmentKind};

use crate::{Comparator, TargetFunc};

/// 16-bit working format dimensioned by Eq. 7 (`Q4.11`).
fn fmt() -> QFormat {
    QFormat::new(4, 11).expect("Q4.11 is valid")
}

/// Rounds a slope to the nearest power of two (or zero when it underflows
/// the format's resolution) — the shift-only multiplier constraint.
fn power_of_two_slope(slope: f64, resolution: f64) -> f64 {
    if slope.abs() < resolution {
        return 0.0;
    }
    let exp = slope.abs().log2().round();
    slope.signum() * exp.exp2()
}

/// Shared mirror logic: σ's negative range from the positive-range value.
fn mirror(x_raw: i64, positive: impl Fn(i64) -> f64) -> f64 {
    if x_raw >= 0 {
        positive(x_raw)
    } else {
        1.0 - positive(-x_raw)
    }
}

/// The 7-segment power-of-two-slope NUPWL of \[6\].
#[derive(Debug, Clone)]
pub struct TsmotsNupwl {
    /// `(segment, slope, bias)` with slope a power of two, values quantised
    /// to the output grid at evaluation.
    pieces: Vec<(Segment, f64, f64)>,
}

impl TsmotsNupwl {
    /// Builds the 7-segment table over σ's positive range.
    #[must_use]
    pub fn new() -> Self {
        let f = fmt();
        let (lo, hi) = (0.0, f.max_value());
        // Gradient-adapted 7 segments, then the power-of-two restriction.
        let mut tol_lo = 1e-6_f64;
        let mut tol_hi = 1.0_f64;
        let mut segs = vec![Segment::new(lo, hi)];
        for _ in 0..50 {
            let tol = (tol_lo * tol_hi).sqrt();
            match segment::greedy_segments(RefFunc::Sigmoid, lo, hi, tol, SegmentKind::Linear, 64) {
                Some(s) if s.len() <= 7 => {
                    segs = s;
                    tol_hi = tol;
                }
                _ => tol_lo = tol,
            }
        }
        let pieces = segs
            .into_iter()
            .map(|seg| {
                let fit = segment::fit_line(RefFunc::Sigmoid, seg, FitMethod::Minimax);
                let slope = power_of_two_slope(fit.slope, f.resolution());
                let bias = segment::refit_bias(RefFunc::Sigmoid, seg, slope);
                (seg, slope, bias)
            })
            .collect();
        Self { pieces }
    }

    fn positive(&self, mag_raw: i64) -> f64 {
        let f = fmt();
        let x = mag_raw as f64 * f.resolution();
        let piece = self
            .pieces
            .iter()
            .find(|(seg, _, _)| seg.contains(x))
            .unwrap_or(self.pieces.last().expect("non-empty"));
        // Shift-multiply plus bias, quantised once to the output grid.
        let y = piece.1 * x + piece.2;
        Fx::from_f64(y, f, Rounding::Nearest).to_f64()
    }
}

impl Default for TsmotsNupwl {
    fn default() -> Self {
        Self::new()
    }
}

impl Comparator for TsmotsNupwl {
    fn citation(&self) -> &'static str {
        "[6]"
    }

    fn implementation(&self) -> &'static str {
        "NUPWL"
    }

    fn func(&self) -> TargetFunc {
        TargetFunc::Sigmoid
    }

    fn input_format(&self) -> QFormat {
        fmt()
    }

    fn output_format(&self) -> QFormat {
        fmt()
    }

    fn eval(&self, x: Fx) -> Fx {
        assert_eq!(x.format(), fmt(), "input format mismatch");
        let y = mirror(x.raw(), |m| self.positive(m));
        Fx::from_f64(y, fmt(), Rounding::Nearest)
    }
}

/// The 4-interval 2nd-order Taylor σ of \[6\].
#[derive(Debug, Clone)]
pub struct TsmotsTaylor2 {
    /// Expansion centres of the four intervals.
    centres: [f64; 4],
    /// Interval upper edges.
    edges: [f64; 4],
}

impl TsmotsTaylor2 {
    /// Builds the published 4-interval design (uniform intervals over the
    /// non-saturated range, expansion at interval midpoints).
    #[must_use]
    pub fn new() -> Self {
        Self {
            edges: [2.0, 4.0, 6.0, f64::INFINITY],
            centres: [1.0, 3.0, 5.0, 7.0],
        }
    }

    /// Variant with re-centred expansion points (the "opt" row).
    #[must_use]
    fn optimised() -> Self {
        // Shift each centre towards the steep side of its interval, where
        // the truncated third-order term is largest.
        Self {
            edges: [2.0, 4.0, 6.0, f64::INFINITY],
            centres: [0.85, 2.9, 4.95, 7.0],
        }
    }

    fn positive(&self, mag_raw: i64) -> f64 {
        let f = fmt();
        let x = mag_raw as f64 * f.resolution();
        let idx = self.edges.iter().position(|&e| x < e).unwrap_or(3);
        let c = self.centres[idx];
        let s = nacu_funcapprox::reference::sigmoid(c);
        let d1 = s * (1.0 - s);
        let d2 = d1 * (1.0 - 2.0 * s);
        let dx = x - c;
        // Coefficients and the result are quantised to the 16-bit grid.
        let quant = |v: f64| Fx::from_f64(v, f, Rounding::Nearest).to_f64();
        let y = quant(s) + quant(d1) * dx + quant(d2 / 2.0) * dx * dx;
        Fx::from_f64(y, f, Rounding::Nearest).to_f64()
    }
}

impl Default for TsmotsTaylor2 {
    fn default() -> Self {
        Self::new()
    }
}

impl Comparator for TsmotsTaylor2 {
    fn citation(&self) -> &'static str {
        "[6]"
    }

    fn implementation(&self) -> &'static str {
        "2nd-order Taylor"
    }

    fn func(&self) -> TargetFunc {
        TargetFunc::Sigmoid
    }

    fn input_format(&self) -> QFormat {
        fmt()
    }

    fn output_format(&self) -> QFormat {
        fmt()
    }

    fn eval(&self, x: Fx) -> Fx {
        assert_eq!(x.format(), fmt(), "input format mismatch");
        let y = mirror(x.raw(), |m| self.positive(m));
        Fx::from_f64(y, fmt(), Rounding::Nearest)
    }
}

/// The optimised 2nd-order Taylor σ of \[6\] (Table I's third column).
#[derive(Debug, Clone)]
pub struct TsmotsTaylor2Opt {
    inner: TsmotsTaylor2,
}

impl TsmotsTaylor2Opt {
    /// Builds the re-centred variant.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: TsmotsTaylor2::optimised(),
        }
    }
}

impl Default for TsmotsTaylor2Opt {
    fn default() -> Self {
        Self::new()
    }
}

impl Comparator for TsmotsTaylor2Opt {
    fn citation(&self) -> &'static str {
        "[6]"
    }

    fn implementation(&self) -> &'static str {
        "2nd-order Taylor opt"
    }

    fn func(&self) -> TargetFunc {
        TargetFunc::Sigmoid
    }

    fn input_format(&self) -> QFormat {
        fmt()
    }

    fn output_format(&self) -> QFormat {
        fmt()
    }

    fn eval(&self, x: Fx) -> Fx {
        assert_eq!(x.format(), fmt(), "input format mismatch");
        let y = mirror(x.raw(), |m| self.inner.positive(m));
        Fx::from_f64(y, fmt(), Rounding::Nearest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;

    #[test]
    fn power_of_two_rounding() {
        let res = 2.0_f64.powi(-11);
        assert_eq!(power_of_two_slope(0.25, res), 0.25);
        assert_eq!(power_of_two_slope(0.2, res), 0.25);
        assert_eq!(power_of_two_slope(0.15, res), 0.125);
        assert_eq!(power_of_two_slope(1e-5, res), 0.0);
        assert_eq!(power_of_two_slope(-0.3, res), -0.25);
    }

    #[test]
    fn nupwl_uses_seven_pieces_with_power_of_two_slopes() {
        let d = TsmotsNupwl::new();
        assert!(d.pieces.len() <= 7);
        for (_, slope, _) in &d.pieces {
            if *slope != 0.0 {
                let l = slope.abs().log2();
                assert!((l - l.round()).abs() < 1e-12, "slope {slope}");
            }
        }
    }

    #[test]
    fn nupwl_error_is_an_order_worse_than_fine_pwl() {
        // §VII.A: the shift-only NUPWL has ~10× worse max error than NACU.
        let report = measure(&TsmotsNupwl::new());
        assert!(
            report.max_error > 2e-3 && report.max_error < 5e-2,
            "max {}",
            report.max_error
        );
    }

    #[test]
    fn taylor_does_not_beat_the_nupwl_by_much() {
        // §VII.A: "the use of a multiplier in the Taylor series does not
        // result in any accuracy improvement".
        let nupwl = measure(&TsmotsNupwl::new());
        let taylor = measure(&TsmotsTaylor2::new());
        assert!(
            taylor.max_error > nupwl.max_error / 10.0,
            "taylor {} vs nupwl {}",
            taylor.max_error,
            nupwl.max_error
        );
    }

    #[test]
    fn optimised_taylor_is_no_worse() {
        let base = measure(&TsmotsTaylor2::new());
        let opt = measure(&TsmotsTaylor2Opt::new());
        assert!(opt.max_error <= base.max_error * 1.05);
    }

    #[test]
    fn all_variants_are_symmetric() {
        let f = fmt();
        for d in [
            Box::new(TsmotsNupwl::new()) as Box<dyn Comparator>,
            Box::new(TsmotsTaylor2::new()),
            Box::new(TsmotsTaylor2Opt::new()),
        ] {
            let x = Fx::from_f64(2.2, f, Rounding::Nearest);
            let nx = Fx::from_f64(-2.2, f, Rounding::Nearest);
            let sum = d.eval(x).to_f64() + d.eval(nx).to_f64();
            assert!((sum - 1.0).abs() < 2e-3, "{}: {sum}", d.implementation());
        }
    }
}
