//! Shared base-2 range-reduction helpers for the exponential comparators.
//!
//! Every related-work exp design (\[12\], \[13\], \[14\]) exploits the change of
//! base `e^x = 2^{x·log₂e} = 2^I · 2^F` with `I = ⌊t⌋ ≤ 0` and
//! `F = t − I ∈ [0, 1)`: the integer part becomes an arithmetic shift and
//! only the fractional power needs approximating.

use nacu_fixed::Rounding;

/// `log₂(e)` as a fixed-point constant with `frac` fractional bits.
#[must_use]
pub fn log2e_raw(frac: u32) -> i64 {
    Rounding::Nearest.quantize(std::f64::consts::LOG2_E, frac) as i64
}

/// Multiplier-less `x·log₂e` of \[12\]: shift-add with
/// `1.44140625 = 1 + 2⁻¹ − 2⁻⁴ + 2⁻⁸` (four terms, no multiplier).
#[must_use]
pub fn mul_log2e_shift_add(x_raw: i64) -> i64 {
    x_raw + (x_raw >> 1) - (x_raw >> 4) + (x_raw >> 8)
}

/// Exact fixed-point `x·log₂e` (for the designs that do own a multiplier):
/// the product is formed wide and rounded back to `frac` fractional bits.
#[must_use]
pub fn mul_log2e(x_raw: i64, frac: u32) -> i64 {
    let product = x_raw as i128 * log2e_raw(frac) as i128;
    Rounding::Nearest.shift_right(product, frac) as i64
}

/// Splits `t` (raw, `frac` fractional bits, any sign) into the base-2
/// exponent pair: `(I, F_raw)` with `I = ⌊t⌋` and `F_raw ∈ [0, 2^frac)`.
#[must_use]
pub fn split(t_raw: i64, frac: u32) -> (i64, i64) {
    let one = 1_i64 << frac;
    let i = t_raw.div_euclid(one);
    let f = t_raw.rem_euclid(one);
    (i, f)
}

/// Applies the integer part: `value >> (−I)` for `I ≤ 0` (arithmetic right
/// shift with round-to-nearest), saturating the shift amount.
#[must_use]
pub fn apply_negative_exponent(value_raw: i64, i: i64) -> i64 {
    debug_assert!(i <= 0, "normalised exp inputs have non-positive exponent");
    let shift = (-i).min(62) as u32;
    Rounding::Nearest.shift_right(value_raw as i128, shift) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_add_constant_is_close_to_log2e() {
        // The [12] approximation: 1.44140625 vs 1.442695...
        let f = 16u32;
        let one = 1_i64 << f;
        let approx = mul_log2e_shift_add(one) as f64 / one as f64;
        assert!((approx - 1.44140625).abs() < 1e-9);
        assert!((approx - std::f64::consts::LOG2_E).abs() < 2e-3);
    }

    #[test]
    fn exact_multiply_error_scales_with_magnitude() {
        // The quantised constant is off by ≤ half an LSB, so the product
        // error grows with |x|: ≤ (|x|/2 + 1) LSBs after rounding.
        let f = 13u32;
        let one = 1_i64 << f;
        for v in [-16.0_f64, -3.3, -0.5, 0.0] {
            let raw = (v * one as f64).round() as i64;
            let t = mul_log2e(raw, f) as f64 / one as f64;
            let bound = (v.abs() / 2.0 + 1.5) / one as f64;
            assert!(
                (t - v * std::f64::consts::LOG2_E).abs() < bound,
                "v={v}: {t}"
            );
        }
    }

    #[test]
    fn split_handles_negative_values() {
        let f = 4u32;
        // t = -1.25 → I = -2, F = 0.75.
        let (i, fr) = split(-20, f);
        assert_eq!(i, -2);
        assert_eq!(fr, 12);
        // t = -2.0 exactly → I = -2, F = 0.
        let (i, fr) = split(-32, f);
        assert_eq!(i, -2);
        assert_eq!(fr, 0);
        // t = 0.5 → I = 0, F = 0.5.
        let (i, fr) = split(8, f);
        assert_eq!(i, 0);
        assert_eq!(fr, 8);
    }

    #[test]
    fn split_reconstructs_input() {
        let f = 7u32;
        let one = 1_i64 << f;
        for t in -1000..100 {
            let (i, fr) = split(t, f);
            assert_eq!(i * one + fr, t);
            assert!((0..one).contains(&fr));
        }
    }

    #[test]
    fn exponent_shift_halves_per_step() {
        let one = 1_i64 << 10;
        assert_eq!(apply_negative_exponent(one, 0), one);
        assert_eq!(apply_negative_exponent(one, -1), one / 2);
        assert_eq!(apply_negative_exponent(one, -10), 1);
        assert_eq!(apply_negative_exponent(one, -100), 0);
    }
}
