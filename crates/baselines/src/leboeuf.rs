//! The high-speed RALUT tanh of Leboeuf et al. \[5\]: 10 bits, 127 entries.
//!
//! A single range-addressable table covers the whole positive range; the
//! large entry count (127 vs \[4\]'s 14) buys roughly two extra bits of
//! accuracy at ~9× the area (Table I: 11 871 µm² vs 1 280 µm² at 180 nm).

use nacu_fixed::{Fx, QFormat, Rounding};
use nacu_funcapprox::reference::RefFunc;
use nacu_funcapprox::segment::{self, Segment, SegmentKind};

use crate::{Comparator, TargetFunc};

/// 10-bit input `Q2.7` (range ±4).
fn in_fmt() -> QFormat {
    QFormat::new(2, 7).expect("Q2.7 is valid")
}

/// 10-bit output `Q0.9`.
fn out_fmt() -> QFormat {
    QFormat::new(0, 9).expect("Q0.9 is valid")
}

/// The \[5\] comparator.
#[derive(Debug, Clone)]
pub struct LeboeufRalut {
    /// `(upper_edge, constant)` records over the positive range.
    table: Vec<(f64, f64)>,
}

impl LeboeufRalut {
    /// Builds the 127-entry table over `[0, 4)`.
    #[must_use]
    pub fn new() -> Self {
        let hi = in_fmt().max_value();
        let mut tol_lo = 1e-6_f64;
        let mut tol_hi = 0.5_f64;
        let mut segs: Vec<Segment> = vec![Segment::new(0.0, hi)];
        for _ in 0..50 {
            let tol = (tol_lo * tol_hi).sqrt();
            match segment::greedy_segments(RefFunc::Tanh, 0.0, hi, tol, SegmentKind::Constant, 1024)
            {
                Some(s) if s.len() <= 127 => {
                    segs = s;
                    tol_hi = tol;
                }
                _ => tol_lo = tol,
            }
        }
        let table = segs
            .into_iter()
            .map(|seg| {
                let c = 0.5 * (seg.lo.tanh() + seg.hi.tanh());
                let q = Fx::from_f64(c, out_fmt(), Rounding::Nearest).to_f64();
                (seg.hi, q)
            })
            .collect();
        Self { table }
    }

    fn positive(&self, mag: f64) -> f64 {
        self.table
            .iter()
            .find(|(edge, _)| mag < *edge)
            .map_or_else(|| self.table.last().expect("non-empty").1, |(_, c)| *c)
    }
}

impl Default for LeboeufRalut {
    fn default() -> Self {
        Self::new()
    }
}

impl Comparator for LeboeufRalut {
    fn citation(&self) -> &'static str {
        "[5]"
    }

    fn implementation(&self) -> &'static str {
        "RALUT"
    }

    fn func(&self) -> TargetFunc {
        TargetFunc::Tanh
    }

    fn input_format(&self) -> QFormat {
        in_fmt()
    }

    fn output_format(&self) -> QFormat {
        out_fmt()
    }

    fn eval(&self, x: Fx) -> Fx {
        assert_eq!(x.format(), in_fmt(), "input format mismatch");
        let mag = (x.raw().abs() as f64) * in_fmt().resolution();
        let y = self.positive(mag);
        let signed = if x.raw() < 0 { -y } else { y };
        Fx::from_f64(signed, out_fmt(), Rounding::Nearest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;
    use crate::zamanlooy::ZamanlooyRalut;

    #[test]
    fn entry_budget_is_127() {
        let d = LeboeufRalut::new();
        assert!(d.table.len() <= 127);
        assert!(d.table.len() > 64, "should use most of the budget");
    }

    #[test]
    fn nine_times_the_entries_buy_real_accuracy() {
        // Table I: [5] is ~9× the area of [4]; Fig. 6b shows it closer to
        // NACU than [4].
        let small = measure(&ZamanlooyRalut::new());
        let large = measure(&LeboeufRalut::new());
        assert!(
            large.max_error < small.max_error,
            "127-entry {} vs 14-entry {}",
            large.max_error,
            small.max_error
        );
    }

    #[test]
    fn error_is_near_the_ten_bit_floor() {
        let report = measure(&LeboeufRalut::new());
        assert!(
            report.max_error < 2.0_f64.powi(-7),
            "max {}",
            report.max_error
        );
        assert!(report.correlation > 0.9999);
    }

    #[test]
    fn monotone_over_positive_range() {
        let d = LeboeufRalut::new();
        let f = in_fmt();
        let mut prev = -1.0;
        for raw in 0..f.max_raw() {
            let y = d.eval(Fx::from_raw(raw, f).unwrap()).to_f64();
            assert!(y >= prev, "raw {raw}");
            prev = y;
        }
    }
}
