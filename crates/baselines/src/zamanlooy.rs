//! The 3-region RALUT tanh of Zamanlooy & Mirhassani \[4\]: 9-bit input,
//! 6-bit output, 14 table entries.
//!
//! The input range is split into a **pass region** where `tanh(x) ≈ x`, an
//! **elaboration region** covered by a range-addressable LUT, and a
//! **saturation region** where the output is the constant 1 (§VI). The
//! coarse 6-bit output grid bounds the achievable accuracy at ~2⁻⁶ — the
//! ~10× gap to NACU that Fig. 6b shows.

use nacu_fixed::{Fx, QFormat, Rounding};
use nacu_funcapprox::segment::{self, Segment, SegmentKind};

use crate::{Comparator, TargetFunc};

/// 9-bit input `Q2.6` (range ±4, enough for tanh saturation at 6-bit
/// output precision).
fn in_fmt() -> QFormat {
    QFormat::new(2, 6).expect("Q2.6 is valid")
}

/// 6-bit output `Q0.5`.
fn out_fmt() -> QFormat {
    QFormat::new(0, 5).expect("Q0.5 is valid")
}

/// Pass-region edge: `tanh(x) ≈ x` within half an output LSB for
/// `x³/3 < 2⁻⁶`, i.e. `x < 0.36`; quantised to the input grid.
const PASS_EDGE: f64 = 0.359_375; // 23/64

/// Saturation edge: `1 − tanh(x) < 2⁻⁶` for `x > atanh(1 − 2⁻⁶) ≈ 2.4`.
const SAT_EDGE: f64 = 2.406_25; // 154/64

/// The \[4\] comparator.
#[derive(Debug, Clone)]
pub struct ZamanlooyRalut {
    /// `(upper_edge, constant)` records of the elaboration region.
    table: Vec<(f64, f64)>,
}

impl ZamanlooyRalut {
    /// Builds the 14-entry elaboration table between the pass and
    /// saturation edges.
    #[must_use]
    pub fn new() -> Self {
        // Bisect the tolerance to land at ≤ 14 gradient-adapted segments.
        let mut tol_lo = 1e-4_f64;
        let mut tol_hi = 0.5_f64;
        let mut segs: Vec<Segment> = vec![Segment::new(PASS_EDGE, SAT_EDGE)];
        for _ in 0..50 {
            let tol = (tol_lo * tol_hi).sqrt();
            match segment::greedy_segments(
                nacu_funcapprox::reference::RefFunc::Tanh,
                PASS_EDGE,
                SAT_EDGE,
                tol,
                SegmentKind::Constant,
                256,
            ) {
                Some(s) if s.len() <= 14 => {
                    segs = s;
                    tol_hi = tol;
                }
                _ => tol_lo = tol,
            }
        }
        let table = segs
            .into_iter()
            .map(|seg| {
                let c = 0.5 * (seg.lo.tanh() + seg.hi.tanh());
                // Constants live on the 6-bit output grid.
                let q = Fx::from_f64(c, out_fmt(), Rounding::Nearest).to_f64();
                (seg.hi, q)
            })
            .collect();
        Self { table }
    }

    fn positive(&self, mag: f64) -> f64 {
        if mag < PASS_EDGE {
            // Pass region: the input bits are forwarded (requantised to
            // the narrower output word).
            return mag;
        }
        if mag >= SAT_EDGE {
            return 1.0;
        }
        self.table
            .iter()
            .find(|(hi, _)| mag < *hi)
            .map_or(1.0, |(_, c)| *c)
    }
}

impl Default for ZamanlooyRalut {
    fn default() -> Self {
        Self::new()
    }
}

impl Comparator for ZamanlooyRalut {
    fn citation(&self) -> &'static str {
        "[4]"
    }

    fn implementation(&self) -> &'static str {
        "RALUT"
    }

    fn func(&self) -> TargetFunc {
        TargetFunc::Tanh
    }

    fn input_format(&self) -> QFormat {
        in_fmt()
    }

    fn output_format(&self) -> QFormat {
        out_fmt()
    }

    fn eval(&self, x: Fx) -> Fx {
        assert_eq!(x.format(), in_fmt(), "input format mismatch");
        let mag = (x.raw().abs() as f64) * in_fmt().resolution();
        let y = self.positive(mag);
        let signed = if x.raw() < 0 { -y } else { y };
        Fx::from_f64(signed, out_fmt(), Rounding::Nearest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;

    #[test]
    fn table_respects_the_entry_budget() {
        assert!(ZamanlooyRalut::new().table.len() <= 14);
    }

    #[test]
    fn three_regions_behave_as_described() {
        let d = ZamanlooyRalut::new();
        let f = in_fmt();
        // Pass region: output ≈ input.
        let x = Fx::from_f64(0.25, f, Rounding::Nearest);
        assert!((d.eval(x).to_f64() - 0.25).abs() < 2.0 * out_fmt().resolution());
        // Saturation region: output = max code ≈ 1.
        let x = Fx::from_f64(3.5, f, Rounding::Nearest);
        assert!(d.eval(x).to_f64() > 0.95);
    }

    #[test]
    fn error_sits_in_the_six_bit_decade() {
        let report = measure(&ZamanlooyRalut::new());
        // 6-bit output: error in the 2^-6..2^-4 decade, ~10× NACU's.
        assert!(
            report.max_error > 2.0_f64.powi(-7) && report.max_error < 2.0_f64.powi(-4),
            "max {}",
            report.max_error
        );
    }

    #[test]
    fn odd_symmetry() {
        let d = ZamanlooyRalut::new();
        let f = in_fmt();
        for v in [0.2, 1.0, 2.0, 3.9] {
            let p = d.eval(Fx::from_f64(v, f, Rounding::Nearest)).to_f64();
            let n = d.eval(Fx::from_f64(-v, f, Rounding::Nearest)).to_f64();
            assert!((p + n).abs() < 2.0 * out_fmt().resolution(), "v={v}");
        }
    }
}
