//! The cost-efficient sigmoid-like activation of Nambiar et al. \[9\].
//!
//! \[9\] replaces σ with a **piecewise parabolic sigmoid-like** curve whose
//! coefficients are powers of two, so evaluation is two shifts and an add
//! (§VI groups it with the parabolic approximations of \[6\]). The classic
//! construction ("PLAN-style" quadratic): for `0 ≤ x < 4`,
//! `y = 1 − (4 − x)²/32`, saturating to 1 beyond, mirrored for `x < 0`.
//! All constants are powers of two; the curve matches σ's value and
//! saturation behaviour but not its exact shape — a deliberate
//! accuracy-for-area trade.

use nacu_fixed::{Fx, QFormat, Rounding};

use crate::{Comparator, TargetFunc};

/// 16-bit `Q3.12`.
fn fmt() -> QFormat {
    QFormat::new(3, 12).expect("Q3.12 is valid")
}

/// Saturation edge of the parabolic section.
const EDGE: f64 = 4.0;

/// The \[9\] comparator.
#[derive(Debug, Clone, Copy, Default)]
pub struct NambiarParabolic {
    _private: (),
}

impl NambiarParabolic {
    /// Creates the design.
    #[must_use]
    pub fn new() -> Self {
        Self { _private: () }
    }

    fn positive(mag: f64) -> f64 {
        if mag >= EDGE {
            return 1.0;
        }
        // 1 − (4 − x)²/32: the divide-by-32 is a 5-bit right shift and the
        // square is the only multiplication.
        let d = EDGE - mag;
        1.0 - d * d / 32.0
    }
}

impl Comparator for NambiarParabolic {
    fn citation(&self) -> &'static str {
        "[9]"
    }

    fn implementation(&self) -> &'static str {
        "parabolic sigmoid-like"
    }

    fn func(&self) -> TargetFunc {
        TargetFunc::Sigmoid
    }

    fn input_format(&self) -> QFormat {
        fmt()
    }

    fn output_format(&self) -> QFormat {
        fmt()
    }

    fn eval(&self, x: Fx) -> Fx {
        assert_eq!(x.format(), fmt(), "input format mismatch");
        let mag = (x.raw().abs() as f64) * fmt().resolution();
        let y = Self::positive(mag);
        let out = if x.raw() < 0 { 1.0 - y } else { y };
        Fx::from_f64(out, fmt(), Rounding::Nearest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;

    #[test]
    fn endpoints_match_sigma_exactly() {
        let d = NambiarParabolic::new();
        let f = fmt();
        // y(0) = 1 - 16/32 = 0.5 = σ(0); y(4) = 1.
        assert!((d.eval(Fx::zero(f)).to_f64() - 0.5).abs() < 1e-3);
        let x4 = Fx::from_f64(4.0, f, Rounding::Nearest);
        assert!((d.eval(x4).to_f64() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn error_reflects_the_deliberate_shape_mismatch() {
        // A sigmoid-like curve, not σ: percent-level max error is the
        // design's stated trade (its value is the zero-multiplier cost).
        let report = measure(&NambiarParabolic::new());
        assert!(
            report.max_error > 1e-2 && report.max_error < 8e-2,
            "max {}",
            report.max_error
        );
        assert!(report.correlation > 0.99);
    }

    #[test]
    fn monotone_and_saturating() {
        let d = NambiarParabolic::new();
        let f = fmt();
        let mut prev = -1.0;
        for raw in (0..f.max_raw()).step_by(61) {
            let y = d.eval(Fx::from_raw(raw, f).unwrap()).to_f64();
            assert!(y >= prev - 1e-12);
            prev = y;
        }
        let beyond = Fx::from_f64(7.5, f, Rounding::Nearest);
        assert!((d.eval(beyond).to_f64() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn centrosymmetric_like_sigma() {
        let d = NambiarParabolic::new();
        let f = fmt();
        for v in [0.5, 2.0, 3.5] {
            let p = d.eval(Fx::from_f64(v, f, Rounding::Nearest)).to_f64();
            let n = d.eval(Fx::from_f64(-v, f, Rounding::Nearest)).to_f64();
            assert!((p + n - 1.0).abs() < 1e-3, "v={v}");
        }
    }
}
