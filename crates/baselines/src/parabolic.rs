//! The parabolic-synthesis exponential of Pouyan et al. \[14\]: 18 bits.
//!
//! Parabolic synthesis approximates `2^F` over `[0, 1)` as a **product of
//! parabolic factors**: a first factor captures the bulk of the curve and
//! each further factor flattens the remaining relative error. We implement
//! the two-factor form — `2^F ≈ s₁(F) · s₂(F)` with `s₁ = 1 + F` (the
//! natural first parabola degenerate to a line through both endpoints) and
//! `s₂` a least-squares parabola of `2^F / (1 + F)` — which lands the
//! error in the published decade for an 18-bit word.

use nacu_fixed::{Fx, QFormat, Rounding};

use crate::exp2;
use crate::{Comparator, TargetFunc};

/// 18-bit input `Q4.13`.
fn in_fmt() -> QFormat {
    QFormat::new(4, 13).expect("Q4.13 is valid")
}

/// 18-bit output `Q1.16`.
fn out_fmt() -> QFormat {
    QFormat::new(1, 16).expect("Q1.16 is valid")
}

/// Working precision (guard bits over the output).
const WORK_FRAC: u32 = 20;

/// Least-squares quadratic fit of `g` over `[0, 1)` by Gaussian
/// elimination on the normal equations.
#[allow(clippy::needless_range_loop)] // Gaussian elimination reads clearest indexed
fn fit_quadratic(g: impl Fn(f64) -> f64) -> (f64, f64, f64) {
    let n = 512;
    let (mut s0, mut s1, mut s2, mut s3, mut s4) = (0.0, 0.0, 0.0, 0.0, 0.0);
    let (mut t0, mut t1, mut t2) = (0.0, 0.0, 0.0);
    for k in 0..n {
        let f = k as f64 / n as f64;
        let y = g(f);
        let f2 = f * f;
        s0 += 1.0;
        s1 += f;
        s2 += f2;
        s3 += f2 * f;
        s4 += f2 * f2;
        t0 += y;
        t1 += y * f;
        t2 += y * f2;
    }
    let mut m = [[s0, s1, s2, t0], [s1, s2, s3, t1], [s2, s3, s4, t2]];
    for col in 0..3 {
        let pivot_row = (col..3)
            .max_by(|&a, &b| m[a][col].abs().total_cmp(&m[b][col].abs()))
            .expect("non-empty");
        m.swap(col, pivot_row);
        for row in 0..3 {
            if row != col {
                let factor = m[row][col] / m[col][col];
                for k in col..4 {
                    m[row][k] -= factor * m[col][k];
                }
            }
        }
    }
    (m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2])
}

/// The \[14\] parabolic-synthesis comparator.
#[derive(Debug, Clone)]
pub struct ParabolicExp {
    /// Second-factor parabola coefficients `(c0, c1, c2)` at the working
    /// scale: `s₂(F) = c0 + c1·F + c2·F²`.
    s2: (i64, i64, i64),
    /// Third-stage second-degree interpolation: one parabola per
    /// quarter of the unit interval, same coefficient layout.
    s3: [(i64, i64, i64); 4],
}

impl ParabolicExp {
    /// Fits the cascaded parabolic factors and quantises the coefficients.
    #[must_use]
    pub fn new() -> Self {
        // Factor 2: least-squares parabola of g(F) = 2^F / (1 + F).
        let (a0, a1, a2) = fit_quadratic(|f| f.exp2() / (1.0 + f));
        // Stage 3: second-degree interpolation of the remaining ratio on
        // four sub-intervals (quadratic LS can't reduce its own residual,
        // which is orthogonal to quadratics — the piecewise stage can).
        let ratio = |f: f64| f.exp2() / ((1.0 + f) * (a0 + a1 * f + a2 * f * f));
        let q = |v: f64| Rounding::Nearest.quantize(v, WORK_FRAC) as i64;
        let s3 = std::array::from_fn(|k| {
            let lo = k as f64 / 4.0;
            let (b0, b1, b2) = fit_quadratic(|f| ratio(lo + f / 4.0));
            // Re-express in the global F coordinate: g(F) = b0 + b1·u + b2·u²
            // with u = 4(F − lo).
            let g2 = b2 * 16.0;
            let g1 = 4.0 * b1 - 32.0 * b2 * lo;
            let g0 = b0 - 4.0 * b1 * lo + 16.0 * b2 * lo * lo;
            (q(g0), q(g1), q(g2))
        });
        Self {
            s2: (q(a0), q(a1), q(a2)),
            s3,
        }
    }

    /// `2^F` at the working scale for `F_raw ∈ [0, 2^frac)`.
    fn pow2_frac(&self, f_raw: i64, in_frac: u32) -> i64 {
        let f_work = (f_raw as i128) << (WORK_FRAC - in_frac);
        let one = 1_i128 << WORK_FRAC;
        let quad = |(c0, c1, c2): (i64, i64, i64)| -> i128 {
            // c0 + c1·F + c2·F² by Horner at the working scale.
            let inner = (c2 as i128 * f_work) >> WORK_FRAC;
            let inner = ((c1 as i128 + inner) * f_work) >> WORK_FRAC;
            c0 as i128 + inner
        };
        // s1(F) = 1 + F; each product is re-scaled as the hardware's
        // truncated multipliers would. Stage 3 selects its sub-interval
        // parabola by the top two fractional bits.
        let s1 = one + f_work;
        let p12 = Rounding::Nearest.shift_right(s1 * quad(self.s2), WORK_FRAC);
        let sub = ((f_work >> (WORK_FRAC - 2)) & 3) as usize;
        Rounding::Nearest.shift_right(p12 * quad(self.s3[sub]), WORK_FRAC) as i64
    }
}

impl Default for ParabolicExp {
    fn default() -> Self {
        Self::new()
    }
}

impl Comparator for ParabolicExp {
    fn citation(&self) -> &'static str {
        "[14]"
    }

    fn implementation(&self) -> &'static str {
        "Parabolic"
    }

    fn func(&self) -> TargetFunc {
        TargetFunc::Exp
    }

    fn input_format(&self) -> QFormat {
        in_fmt()
    }

    fn output_format(&self) -> QFormat {
        out_fmt()
    }

    fn eval(&self, x: Fx) -> Fx {
        assert_eq!(x.format(), in_fmt(), "input format mismatch");
        let in_frac = in_fmt().frac_bits();
        let clamped = x.raw().min(0);
        let t = exp2::mul_log2e(clamped, in_frac);
        let (i, f) = exp2::split(t, in_frac);
        let p = self.pow2_frac(f, in_frac);
        let shifted = exp2::apply_negative_exponent(p, i);
        let y = Rounding::Nearest.shift_right(shifted as i128, WORK_FRAC - out_fmt().frac_bits());
        Fx::from_raw_saturating(y as i64, out_fmt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;

    #[test]
    fn two_factor_synthesis_beats_the_single_line() {
        let d = ParabolicExp::new();
        let in_frac = in_fmt().frac_bits();
        let one = 1_i64 << in_frac;
        let scale = f64::from(1u32 << WORK_FRAC);
        let mut with_s2 = 0.0_f64;
        let mut line_only = 0.0_f64;
        for f in (0..one).step_by(5) {
            let ff = f as f64 / one as f64;
            let want = ff.exp2();
            with_s2 = with_s2.max((d.pow2_frac(f, in_frac) as f64 / scale - want).abs());
            line_only = line_only.max(((1.0 + ff) - want).abs());
        }
        assert!(line_only > 0.05, "the bare 1+F line has a 6% kink");
        assert!(
            with_s2 < line_only / 200.0,
            "the cascade flattens it: {with_s2}"
        );
    }

    #[test]
    fn full_range_error_is_an_order_below_nacu() {
        let report = measure(&ParabolicExp::new());
        assert!(report.max_error < 1e-3, "max {}", report.max_error);
        assert!(report.correlation > 0.9999);
    }

    #[test]
    fn known_points() {
        let d = ParabolicExp::new();
        let f = in_fmt();
        assert!((d.eval(Fx::zero(f)).to_f64() - 1.0).abs() < 2e-3);
        for v in [-0.3, -2.0, -8.0] {
            let got = d.eval(Fx::from_f64(v, f, Rounding::Nearest)).to_f64();
            assert!((got - v.exp()).abs() < 2e-3, "e^{v}: {got}");
        }
    }
}
