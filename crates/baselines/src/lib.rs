//! Re-implementations of the related work the NACU paper compares against
//! (§VI, Table I, Fig. 6).
//!
//! Each module implements one published hardware approximation **from its
//! paper's description, at its paper's bit-width**, behind the common
//! [`Comparator`] trait, so the Fig. 6 error comparison can be regenerated
//! by sweeping every design with the same measurement kernel
//! ([`measure`]).
//!
//! | module | citation | style | functions |
//! |---|---|---|---|
//! | [`zamanlooy`] | \[4\] | 3-region RALUT, 9→6 bit | tanh |
//! | [`leboeuf`] | \[5\] | 127-entry RALUT, 10 bit | tanh |
//! | [`tsmots`] | \[6\] | 7-seg NUPWL (power-of-two slopes) + 2nd-order Taylor, 16 bit | σ |
//! | [`namin`] | \[8\] | PWL + RALUT hybrid, 10 bit | tanh |
//! | [`finker`] | \[10\] | 102-seg 1st / 28-seg 2nd-order Taylor, 16 bit | σ |
//! | [`gomar`] | \[11\], \[12\] | multiplier-less 2^x with `2^F ≈ 1+F`, σ/tanh via division | σ, tanh |
//! | [`basterretxea`] | \[7\] | recursive centred-interpolation PWL, 16 bit | σ |
//! | [`nambiar`] | \[9\] | power-of-two parabolic sigmoid-like, 16 bit | σ |
//! | [`nilsson`] | \[13\] | 6th-order Taylor exp, 18 bit | e |
//! | [`cordic`] | \[14\], \[15\] | hyperbolic CORDIC exp, 21 bit | e |
//! | [`parabolic`] | \[14\] | parabolic-synthesis exp, 18 bit | e |
//!
//! These are reproductions of *algorithms*, not netlists: absolute errors
//! land in each design's published decade and the orderings of Fig. 6 are
//! preserved (see EXPERIMENTS.md for measured-vs-paper numbers).

pub mod basterretxea;
pub mod cordic;
pub mod exp2;
pub mod finker;
pub mod gomar;
pub mod leboeuf;
pub mod nambiar;
pub mod namin;
pub mod nilsson;
pub mod parabolic;
pub mod tsmots;
pub mod zamanlooy;

use nacu_fixed::{Fx, QFormat};
use nacu_funcapprox::metrics::{self, ErrorReport};

/// Which mathematical function a comparator implements, with **full-range**
/// semantics (unlike [`nacu_funcapprox::reference::RefFunc`], which is the
/// one-sided table-domain view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TargetFunc {
    /// σ over the design's full signed input range.
    Sigmoid,
    /// tanh over the design's full signed input range.
    Tanh,
    /// e^x over the non-positive (softmax-normalised) range.
    Exp,
}

impl TargetFunc {
    /// The f64 golden reference.
    #[must_use]
    pub fn reference(&self, x: f64) -> f64 {
        match self {
            TargetFunc::Sigmoid => nacu_funcapprox::reference::sigmoid(x),
            TargetFunc::Tanh => x.tanh(),
            TargetFunc::Exp => x.exp(),
        }
    }
}

impl std::fmt::Display for TargetFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            TargetFunc::Sigmoid => "sigmoid",
            TargetFunc::Tanh => "tanh",
            TargetFunc::Exp => "exp",
        };
        f.write_str(name)
    }
}

/// A related-work design under measurement.
///
/// Implementations evaluate bit-accurately at their published word widths;
/// [`measure`] sweeps every representable input in the design's domain.
pub trait Comparator {
    /// Citation key as printed in Table I (e.g. `"\[4\]"`).
    fn citation(&self) -> &'static str;

    /// Implementation style as printed in Table I.
    fn implementation(&self) -> &'static str;

    /// The function this design computes.
    fn func(&self) -> TargetFunc;

    /// Input format (the design's published width).
    fn input_format(&self) -> QFormat;

    /// Output format.
    fn output_format(&self) -> QFormat;

    /// Bit-accurate evaluation of one sample.
    fn eval(&self, x: Fx) -> Fx;
}

/// Sweeps a comparator over its full input domain and reports the paper's
/// error statistics.
#[must_use]
pub fn measure(design: &dyn Comparator) -> ErrorReport {
    let fmt = design.input_format();
    let func = design.func();
    let (lo, hi) = match func {
        TargetFunc::Sigmoid | TargetFunc::Tanh => (fmt.min_raw(), fmt.max_raw()),
        TargetFunc::Exp => (fmt.min_raw(), 0),
    };
    metrics::sweep_raw_range(
        fmt,
        lo,
        hi,
        |x| func.reference(x),
        |x| design.eval(x).to_f64(),
    )
}

/// All σ comparators of Fig. 6a/6d, boxed for uniform sweeping.
#[must_use]
pub fn sigmoid_designs() -> Vec<Box<dyn Comparator>> {
    vec![
        Box::new(tsmots::TsmotsNupwl::new()),
        Box::new(tsmots::TsmotsTaylor2::new()),
        Box::new(tsmots::TsmotsTaylor2Opt::new()),
        Box::new(finker::FinkerTaylor1::new()),
        Box::new(finker::FinkerTaylor2::new()),
        Box::new(gomar::GomarSigmoid::new()),
        Box::new(basterretxea::BasterretxeaCri::new()),
        Box::new(nambiar::NambiarParabolic::new()),
    ]
}

/// All tanh comparators of Fig. 6b/6e.
#[must_use]
pub fn tanh_designs() -> Vec<Box<dyn Comparator>> {
    vec![
        Box::new(gomar::GomarTanh::new()),
        Box::new(zamanlooy::ZamanlooyRalut::new()),
        Box::new(leboeuf::LeboeufRalut::new()),
        Box::new(namin::NaminHybrid::new()),
    ]
}

/// All exp comparators of Fig. 6c.
#[must_use]
pub fn exp_designs() -> Vec<Box<dyn Comparator>> {
    vec![
        Box::new(nilsson::NilssonTaylor6::new()),
        Box::new(cordic::CordicExp::new()),
        Box::new(parabolic::ParabolicExp::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_design_reports_sane_metadata() {
        for d in sigmoid_designs() {
            assert_eq!(d.func(), TargetFunc::Sigmoid, "{}", d.citation());
        }
        for d in tanh_designs() {
            assert_eq!(d.func(), TargetFunc::Tanh, "{}", d.citation());
        }
        for d in exp_designs() {
            assert_eq!(d.func(), TargetFunc::Exp, "{}", d.citation());
        }
    }

    #[test]
    fn every_design_is_better_than_a_constant() {
        for d in sigmoid_designs()
            .into_iter()
            .chain(tanh_designs())
            .chain(exp_designs())
        {
            let report = measure(d.as_ref());
            assert!(
                report.max_error < 0.2,
                "{} {} is broken: max error {}",
                d.citation(),
                d.implementation(),
                report.max_error
            );
            assert!(
                report.correlation > 0.99,
                "{} {}: correlation {}",
                d.citation(),
                d.implementation(),
                report.correlation
            );
        }
    }
}
