//! The hyperbolic-CORDIC exponential of \[14\]/\[15\]: 21 bits.
//!
//! Rotation-mode hyperbolic CORDIC drives the residual angle `z → 0`
//! through shift-add iterations, leaving `x = K·cosh(z₀)` and
//! `y = K·sinh(z₀)`, so `e^{z₀} = (x + y)/K`. Convergence requires
//! `|z₀| ≲ 1.118`, so the input is range-reduced base-2 first:
//! `e^v = 2^I · e^r` with `r = v − I·ln2 ∈ [0, ln2)`. Iterations 4 and 13
//! are repeated, as the hyperbolic variant requires.

use nacu_fixed::{Fx, QFormat, Rounding};

use crate::{Comparator, TargetFunc};

/// 21-bit input `Q4.16`.
fn in_fmt() -> QFormat {
    QFormat::new(4, 16).expect("Q4.16 is valid")
}

/// 21-bit output `Q1.19`.
fn out_fmt() -> QFormat {
    QFormat::new(1, 19).expect("Q1.19 is valid")
}

/// Internal working precision (guard bits over the output).
const WORK_FRAC: u32 = 24;

/// The \[14\]/\[15\] comparator.
#[derive(Debug, Clone)]
pub struct CordicExp {
    /// `atanh(2^{-i})` angles at the working scale, with 4 and 13 repeated.
    angles: Vec<(u32, i64)>,
    /// `1/K` (inverse hyperbolic CORDIC gain) at the working scale.
    inv_gain: i64,
    /// `ln 2` at the working scale.
    ln2: i64,
}

impl CordicExp {
    /// Builds the iteration schedule for the 21-bit precision (one
    /// iteration per quotient bit plus the mandatory repeats).
    #[must_use]
    pub fn new() -> Self {
        let iterations: Vec<u32> = {
            let mut v = Vec::new();
            for i in 1..=22u32 {
                v.push(i);
                if i == 4 || i == 13 {
                    v.push(i); // hyperbolic-CORDIC convergence repeats
                }
            }
            v
        };
        let angles = iterations
            .iter()
            .map(|&i| {
                let a = (2.0_f64.powi(-(i as i32))).atanh();
                (i, Rounding::Nearest.quantize(a, WORK_FRAC) as i64)
            })
            .collect();
        // K = Π sqrt(1 - 2^-2i) over the schedule (with repeats).
        let gain: f64 = iterations
            .iter()
            .map(|&i| (1.0 - 2.0_f64.powi(-2 * i as i32)).sqrt())
            .product();
        Self {
            angles,
            inv_gain: Rounding::Nearest.quantize(gain.recip(), WORK_FRAC) as i64,
            ln2: Rounding::Nearest.quantize(std::f64::consts::LN_2, WORK_FRAC) as i64,
        }
    }

    /// `e^r` for `r_raw ∈ [0, ln2)` at the working scale.
    fn exp_core(&self, r_raw: i64) -> i64 {
        let mut x: i64 = self.inv_gain;
        let mut y: i64 = 0;
        let mut z: i64 = r_raw;
        for &(i, angle) in &self.angles {
            let (dx, dy) = (y >> i, x >> i);
            if z >= 0 {
                x += dx;
                y += dy;
                z -= angle;
            } else {
                x -= dx;
                y -= dy;
                z += angle;
            }
        }
        x + y // cosh r + sinh r = e^r
    }
}

impl Default for CordicExp {
    fn default() -> Self {
        Self::new()
    }
}

impl Comparator for CordicExp {
    fn citation(&self) -> &'static str {
        "[14]"
    }

    fn implementation(&self) -> &'static str {
        "CORDIC"
    }

    fn func(&self) -> TargetFunc {
        TargetFunc::Exp
    }

    fn input_format(&self) -> QFormat {
        in_fmt()
    }

    fn output_format(&self) -> QFormat {
        out_fmt()
    }

    fn eval(&self, x: Fx) -> Fx {
        assert_eq!(x.format(), in_fmt(), "input format mismatch");
        let in_frac = in_fmt().frac_bits();
        // Input at the working scale, clamped to the normalised range.
        let v = (x.raw().min(0) as i128) << (WORK_FRAC - in_frac);
        // Base-2 range reduction: v = I·ln2 + r with r ∈ [0, ln2).
        let i = (v).div_euclid(self.ln2 as i128) as i64;
        let r = (v).rem_euclid(self.ln2 as i128) as i64;
        let e_r = self.exp_core(r);
        let shift = (-i).min(62) as u32;
        let shifted = Rounding::Nearest.shift_right(e_r as i128, shift);
        let y = Rounding::Nearest.shift_right(shifted, WORK_FRAC - out_fmt().frac_bits());
        Fx::from_raw_saturating(y as i64, out_fmt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;

    #[test]
    fn core_converges_on_the_reduced_range() {
        let d = CordicExp::new();
        let scale = f64::from(1u32 << WORK_FRAC);
        for r in [0.0, 0.1, 0.35, 0.6, 0.69] {
            let raw = (r * scale).round() as i64;
            let got = d.exp_core(raw) as f64 / scale;
            assert!((got - r.exp()).abs() < 1e-5, "e^{r}: {got}");
        }
    }

    #[test]
    fn gain_compensation_is_built_in() {
        // exp_core(0) must be exactly 1 up to quantisation: x+y = 1/K·K.
        let d = CordicExp::new();
        let scale = f64::from(1u32 << WORK_FRAC);
        let one = d.exp_core(0) as f64 / scale;
        assert!((one - 1.0).abs() < 1e-5, "e^0 = {one}");
    }

    #[test]
    fn full_range_error_is_an_order_below_nacu() {
        let report = measure(&CordicExp::new());
        assert!(report.max_error < 4e-4, "max {}", report.max_error);
        assert!(report.correlation > 0.999_99);
    }

    #[test]
    fn deep_negative_inputs_underflow_to_zero() {
        let d = CordicExp::new();
        let f = in_fmt();
        let y = d.eval(Fx::from_f64(-15.9, f, Rounding::Nearest)).to_f64();
        assert!(y < 1e-4);
    }
}
