//! The controlled-accuracy σ of Finker et al. \[10\], 16-bit.
//!
//! \[10\] partitions σ's positive range into many uniform intervals and
//! expands a Taylor series at each interval midpoint: 102 intervals at
//! first order (4 pipeline cycles) or 28 at second order (7 cycles).
//! §VII.A: the 102-segment variant achieves ~10× better max accuracy than
//! NACU — bought with a LUT roughly twice NACU's size — and the 2nd-order
//! variant trades segments for latency at comparable accuracy.

use nacu_fixed::{Fx, QFormat, Rounding};
use nacu_funcapprox::reference::sigmoid;

use crate::{Comparator, TargetFunc};

/// \[10\] dimensions its 16-bit words for a ±8 input range: `Q3.12`.
fn fmt() -> QFormat {
    QFormat::new(3, 12).expect("Q3.12 is valid")
}

/// Shared Taylor-by-interval evaluation over the positive range.
fn taylor_positive(mag_raw: i64, segments: usize, order: u32) -> f64 {
    let f = fmt();
    let hi = f.max_value();
    let x = mag_raw as f64 * f.resolution();
    let width = hi / segments as f64;
    let idx = ((x / width) as usize).min(segments - 1);
    let c = width * (idx as f64 + 0.5);
    let s = sigmoid(c);
    let d1 = s * (1.0 - s);
    let dx = x - c;
    let quant = |v: f64| Fx::from_f64(v, f, Rounding::Nearest).to_f64();
    let mut y = quant(s) + quant(d1) * dx;
    if order >= 2 {
        let d2 = d1 * (1.0 - 2.0 * s);
        y += quant(d2 / 2.0) * dx * dx;
    }
    quant(y)
}

fn mirror(x_raw: i64, positive: impl Fn(i64) -> f64) -> f64 {
    if x_raw >= 0 {
        positive(x_raw)
    } else {
        1.0 - positive(-x_raw)
    }
}

/// The 102-segment first-order variant.
#[derive(Debug, Clone, Copy, Default)]
pub struct FinkerTaylor1 {
    _private: (),
}

impl FinkerTaylor1 {
    /// Creates the published configuration.
    #[must_use]
    pub fn new() -> Self {
        Self { _private: () }
    }
}

impl Comparator for FinkerTaylor1 {
    fn citation(&self) -> &'static str {
        "[10]"
    }

    fn implementation(&self) -> &'static str {
        "1st-order Taylor"
    }

    fn func(&self) -> TargetFunc {
        TargetFunc::Sigmoid
    }

    fn input_format(&self) -> QFormat {
        fmt()
    }

    fn output_format(&self) -> QFormat {
        fmt()
    }

    fn eval(&self, x: Fx) -> Fx {
        assert_eq!(x.format(), fmt(), "input format mismatch");
        let y = mirror(x.raw(), |m| taylor_positive(m, 102, 1));
        Fx::from_f64(y, fmt(), Rounding::Nearest)
    }
}

/// The 28-segment second-order variant.
#[derive(Debug, Clone, Copy, Default)]
pub struct FinkerTaylor2 {
    _private: (),
}

impl FinkerTaylor2 {
    /// Creates the published configuration.
    #[must_use]
    pub fn new() -> Self {
        Self { _private: () }
    }
}

impl Comparator for FinkerTaylor2 {
    fn citation(&self) -> &'static str {
        "[10]"
    }

    fn implementation(&self) -> &'static str {
        "2nd-order Taylor"
    }

    fn func(&self) -> TargetFunc {
        TargetFunc::Sigmoid
    }

    fn input_format(&self) -> QFormat {
        fmt()
    }

    fn output_format(&self) -> QFormat {
        fmt()
    }

    fn eval(&self, x: Fx) -> Fx {
        assert_eq!(x.format(), fmt(), "input format mismatch");
        let y = mirror(x.raw(), |m| taylor_positive(m, 28, 2));
        Fx::from_f64(y, fmt(), Rounding::Nearest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;
    use nacu::{Nacu, NacuConfig};

    #[test]
    fn first_order_beats_nacu_at_16_bits() {
        // §VII.A: "[10] splits σ into 102 segments to achieve 10× better
        // accuracy compared to NACU" — we assert the direction and a ≥2×
        // margin (the exact ratio depends on their unpublished LUT grid).
        let finker = measure(&FinkerTaylor1::new());
        let nacu = Nacu::new(NacuConfig::paper_16bit()).unwrap();
        let nfmt = nacu.config().format;
        let nacu_report = nacu_funcapprox::metrics::sweep_raw_range(
            nfmt,
            nfmt.min_raw(),
            nfmt.max_raw(),
            sigmoid,
            |x| nacu.sigmoid(x).to_f64(),
        );
        assert!(
            finker.max_error * 2.0 < nacu_report.max_error,
            "finker {} vs nacu {}",
            finker.max_error,
            nacu_report.max_error
        );
    }

    #[test]
    fn second_order_is_comparable_to_first() {
        // §VII.A: fewer segments, comparable accuracy, more latency.
        let t1 = measure(&FinkerTaylor1::new());
        let t2 = measure(&FinkerTaylor2::new());
        assert!(t2.max_error < 4.0 * t1.max_error);
        assert!(t1.max_error < 4.0 * t2.max_error);
    }

    #[test]
    fn accuracy_is_sub_milli() {
        let report = measure(&FinkerTaylor1::new());
        assert!(report.max_error < 5e-4, "max {}", report.max_error);
        assert!(report.correlation > 0.9999);
    }

    #[test]
    fn symmetric_and_saturating() {
        let d = FinkerTaylor1::new();
        let f = fmt();
        let x = Fx::from_f64(1.0, f, Rounding::Nearest);
        let nx = Fx::from_f64(-1.0, f, Rounding::Nearest);
        let sum = d.eval(x).to_f64() + d.eval(nx).to_f64();
        assert!((sum - 1.0).abs() < 1e-3);
        let big = Fx::from_f64(7.9, f, Rounding::Nearest);
        assert!((d.eval(big).to_f64() - 1.0).abs() < 1e-3);
    }
}
