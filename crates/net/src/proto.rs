//! The NACU length-prefixed binary batch protocol.
//!
//! Every frame on the wire is a little-endian `u32` length prefix (the
//! byte count of the remainder) followed by the payload. Request payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic            "NACU" (0x5543414E little-endian)
//!      4     1  version          1
//!      5     1  function         0 σ · 1 tanh · 2 exp · 3 softmax
//!      6     1  int_bits         operand format tag (Qm.f)
//!      7     1  frac_bits
//!      8     8  request id       client-chosen, echoed on the reply
//!     16     8  deadline µs      relative to arrival; 0 = no deadline
//!     24     4  count            operand count n (≥ 1)
//!     28    2n  codes            raw two's-complement i16 fixed codes
//! ```
//!
//! Reply payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic
//!      4     1  version
//!      5     1  status           0 OK · 1 BUSY · 2 SHED · 3 QUOTA · 4 ERROR
//!      6     1  code             detail (see [`code`]); 0 when unused
//!      7     1  reserved         always 0
//!      8     8  request id       echoed from the request
//!     16     4  count            output count (0 unless status is OK)
//!     20    2n  codes
//! ```
//!
//! Decoding never panics: every malformed byte sequence maps onto a
//! [`DecodeError`] variant, and framing problems at the socket layer map
//! onto [`ReadError`]. Replies to pipelined requests may arrive in any
//! order; the echoed request id is the correlation key.

use std::io::Read;

use nacu::Function;
use nacu_fixed::{Fx, QFormat};

/// `"NACU"` interpreted as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"NACU");
/// The only protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Request payload bytes before the operand codes.
pub const REQUEST_HEADER_LEN: usize = 28;
/// Reply payload bytes before the output codes.
pub const REPLY_HEADER_LEN: usize = 20;

/// Reply status byte: the admission-control outcome of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Served; the payload carries the output codes.
    Ok = 0,
    /// The engine's bounded queue was full — backpressure, retry later.
    /// Nothing was enqueued and the connection stays open.
    Busy = 1,
    /// Load-shed: the deadline had already passed, or the modeled
    /// hardware floor for the batch exceeds the remaining budget.
    Shed = 2,
    /// The per-client token bucket refused the request.
    Quota = 3,
    /// The request failed; the `code` byte says why (see [`code`]).
    Error = 4,
}

impl Status {
    /// Parses a status byte.
    #[must_use]
    pub fn from_u8(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(Self::Ok),
            1 => Some(Self::Busy),
            2 => Some(Self::Shed),
            3 => Some(Self::Quota),
            4 => Some(Self::Error),
            _ => None,
        }
    }
}

/// Detail codes carried in an ERROR reply's `code` byte.
pub mod code {
    /// No detail (non-ERROR statuses).
    pub const NONE: u8 = 0;
    /// The engine rejected the request as unservable (bad function for
    /// this build, operand format mismatch, empty batch).
    pub const INVALID_REQUEST: u8 = 1;
    /// The engine is shutting down; no new work is accepted.
    pub const SHUTTING_DOWN: u8 = 2;
    /// Every serving attempt hit a fault detector; no output was sent.
    pub const FAULT: u8 = 3;
    /// The previous frame on this connection was malformed; the server
    /// answers with this code (request id 0) and closes the connection.
    pub const PROTOCOL: u8 = 4;
    /// The engine failed for an unclassified internal reason.
    pub const INTERNAL: u8 = 5;
}

/// Wire id for a servable function (MAC is stateful and has no wire id).
#[must_use]
pub fn function_id(function: Function) -> Option<u8> {
    match function {
        Function::Sigmoid => Some(0),
        Function::Tanh => Some(1),
        Function::Exp => Some(2),
        Function::Softmax => Some(3),
        _ => None,
    }
}

/// Function for a wire id.
#[must_use]
pub fn function_from_id(id: u8) -> Option<Function> {
    match id {
        0 => Some(Function::Sigmoid),
        1 => Some(Function::Tanh),
        2 => Some(Function::Exp),
        3 => Some(Function::Softmax),
        _ => None,
    }
}

/// One decoded request frame (the payload after the length prefix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFrame {
    /// The function to evaluate over the codes.
    pub function: Function,
    /// The fixed-point format the codes are expressed in. Servers reject
    /// formats other than the engine's own with an ERROR reply.
    pub format: QFormat,
    /// Client-chosen correlation id, echoed verbatim on the reply.
    pub id: u64,
    /// Deadline in microseconds relative to frame arrival; 0 = none.
    pub deadline_micros: u64,
    /// Raw two's-complement codes in `format`.
    pub codes: Vec<i16>,
}

impl RequestFrame {
    /// The codes as checked fixed-point values.
    ///
    /// # Errors
    ///
    /// [`DecodeError::CodeOutOfRange`] when a code does not fit the
    /// frame's format (possible for formats narrower than 16 bits).
    pub fn operands(&self) -> Result<Vec<Fx>, DecodeError> {
        self.codes
            .iter()
            .enumerate()
            .map(|(index, &code)| {
                Fx::from_raw(i64::from(code), self.format)
                    .map_err(|_| DecodeError::CodeOutOfRange { index, code })
            })
            .collect()
    }
}

/// One decoded reply frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyFrame {
    /// Outcome of the request.
    pub status: Status,
    /// Detail code (see [`code`]); 0 unless `status` is ERROR.
    pub code: u8,
    /// The request id this reply answers.
    pub id: u64,
    /// Output codes; empty unless `status` is OK.
    pub codes: Vec<i16>,
}

impl ReplyFrame {
    /// A no-payload reply (everything except OK).
    #[must_use]
    pub fn control(status: Status, code: u8, id: u64) -> Self {
        Self {
            status,
            code,
            id,
            codes: Vec::new(),
        }
    }

    /// The output codes as fixed-point values in `format`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::CodeOutOfRange`] when a code does not fit `format`.
    pub fn outputs(&self, format: QFormat) -> Result<Vec<Fx>, DecodeError> {
        self.codes
            .iter()
            .enumerate()
            .map(|(index, &code)| {
                Fx::from_raw(i64::from(code), format)
                    .map_err(|_| DecodeError::CodeOutOfRange { index, code })
            })
            .collect()
    }
}

/// Why a payload failed to decode. Exhaustive: every malformed byte
/// sequence lands here, never in a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the fixed header.
    Truncated {
        /// Bytes the header needs.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The magic field was not `"NACU"`.
    BadMagic(u32),
    /// A version this build does not speak.
    BadVersion(u8),
    /// An unknown function id.
    BadFunction(u8),
    /// An unknown status byte (reply decode).
    BadStatus(u8),
    /// A format tag [`QFormat::new`] rejects.
    BadFormat {
        /// Declared integer bits.
        int_bits: u8,
        /// Declared fraction bits.
        frac_bits: u8,
    },
    /// The declared count disagrees with the payload length.
    LengthMismatch {
        /// Payload bytes the declared count requires.
        required: usize,
        /// Payload bytes actually present.
        got: usize,
    },
    /// A request carried zero operands.
    EmptyBatch,
    /// The operand count exceeds the receiver's per-frame bound.
    Oversize {
        /// Declared operand count.
        count: u32,
        /// The receiver's limit.
        max: u32,
    },
    /// A code does not fit the frame's fixed-point format.
    CodeOutOfRange {
        /// Index of the offending code.
        index: usize,
        /// The code itself.
        code: i16,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { needed, got } => {
                write!(
                    f,
                    "payload truncated: header needs {needed} bytes, got {got}"
                )
            }
            Self::BadMagic(m) => write!(f, "bad magic {m:#010x} (want \"NACU\")"),
            Self::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            Self::BadFunction(id) => write!(f, "unknown function id {id}"),
            Self::BadStatus(s) => write!(f, "unknown status byte {s}"),
            Self::BadFormat {
                int_bits,
                frac_bits,
            } => write!(f, "invalid format tag Q{int_bits}.{frac_bits}"),
            Self::LengthMismatch { required, got } => {
                write!(
                    f,
                    "length mismatch: count requires {required} bytes, got {got}"
                )
            }
            Self::EmptyBatch => write!(f, "request carries zero operands"),
            Self::Oversize { count, max } => {
                write!(f, "operand count {count} exceeds the per-frame limit {max}")
            }
            Self::CodeOutOfRange { index, code } => {
                write!(f, "code {code} at index {index} does not fit the format")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Why reading a length-prefixed frame off a stream failed.
#[derive(Debug)]
pub enum ReadError {
    /// The stream died mid-frame (after the length prefix started).
    TruncatedFrame {
        /// Bytes the frame declared.
        declared: usize,
        /// Bytes received before EOF.
        got: usize,
    },
    /// The declared payload length exceeds the receiver's bound — never
    /// allocated, the connection should be dropped.
    Oversize {
        /// Declared payload length.
        declared: u32,
        /// The receiver's limit.
        max: u32,
    },
    /// The underlying transport failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TruncatedFrame { declared, got } => {
                write!(
                    f,
                    "stream ended mid-frame: declared {declared} bytes, got {got}"
                )
            }
            Self::Oversize { declared, max } => {
                write!(
                    f,
                    "declared payload {declared} exceeds the {max}-byte limit"
                )
            }
            Self::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

fn u32_at(payload: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(payload[at..at + 4].try_into().expect("4 bytes"))
}

fn u64_at(payload: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(payload[at..at + 8].try_into().expect("8 bytes"))
}

fn codes_at(payload: &[u8], at: usize, count: usize) -> Vec<i16> {
    (0..count)
        .map(|i| {
            let o = at + 2 * i;
            i16::from_le_bytes([payload[o], payload[o + 1]])
        })
        .collect()
}

fn push_codes(out: &mut Vec<u8>, codes: &[i16]) {
    for &code in codes {
        out.extend_from_slice(&code.to_le_bytes());
    }
}

/// Serialises a request frame, length prefix included.
#[must_use]
pub fn encode_request(frame: &RequestFrame) -> Vec<u8> {
    let payload_len = REQUEST_HEADER_LEN + 2 * frame.codes.len();
    let mut out = Vec::with_capacity(4 + payload_len);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(function_id(frame.function).expect("servable function"));
    out.push(frame.format.int_bits() as u8);
    out.push(frame.format.frac_bits() as u8);
    out.extend_from_slice(&frame.id.to_le_bytes());
    out.extend_from_slice(&frame.deadline_micros.to_le_bytes());
    out.extend_from_slice(&(frame.codes.len() as u32).to_le_bytes());
    push_codes(&mut out, &frame.codes);
    out
}

/// Serialises a reply frame, length prefix included.
#[must_use]
pub fn encode_reply(frame: &ReplyFrame) -> Vec<u8> {
    let payload_len = REPLY_HEADER_LEN + 2 * frame.codes.len();
    let mut out = Vec::with_capacity(4 + payload_len);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(frame.status as u8);
    out.push(frame.code);
    out.push(0); // reserved
    out.extend_from_slice(&frame.id.to_le_bytes());
    out.extend_from_slice(&(frame.codes.len() as u32).to_le_bytes());
    push_codes(&mut out, &frame.codes);
    out
}

fn check_envelope(payload: &[u8], header_len: usize) -> Result<(), DecodeError> {
    if payload.len() < header_len {
        return Err(DecodeError::Truncated {
            needed: header_len,
            got: payload.len(),
        });
    }
    let magic = u32_at(payload, 0);
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    if payload[4] != VERSION {
        return Err(DecodeError::BadVersion(payload[4]));
    }
    Ok(())
}

/// Decodes a request payload (the bytes after the length prefix),
/// enforcing `max_ops` as the per-frame operand bound.
///
/// # Errors
///
/// A [`DecodeError`] naming exactly what is malformed.
pub fn decode_request(payload: &[u8], max_ops: u32) -> Result<RequestFrame, DecodeError> {
    check_envelope(payload, REQUEST_HEADER_LEN)?;
    let function = function_from_id(payload[5]).ok_or(DecodeError::BadFunction(payload[5]))?;
    let (int_bits, frac_bits) = (payload[6], payload[7]);
    let format = QFormat::new(u32::from(int_bits), u32::from(frac_bits)).map_err(|_| {
        DecodeError::BadFormat {
            int_bits,
            frac_bits,
        }
    })?;
    let id = u64_at(payload, 8);
    let deadline_micros = u64_at(payload, 16);
    let count = u32_at(payload, 24);
    if count == 0 {
        return Err(DecodeError::EmptyBatch);
    }
    if count > max_ops {
        return Err(DecodeError::Oversize {
            count,
            max: max_ops,
        });
    }
    let required = REQUEST_HEADER_LEN + 2 * count as usize;
    if payload.len() != required {
        return Err(DecodeError::LengthMismatch {
            required,
            got: payload.len(),
        });
    }
    Ok(RequestFrame {
        function,
        format,
        id,
        deadline_micros,
        codes: codes_at(payload, REQUEST_HEADER_LEN, count as usize),
    })
}

/// Decodes a reply payload (the bytes after the length prefix).
///
/// # Errors
///
/// A [`DecodeError`] naming exactly what is malformed.
pub fn decode_reply(payload: &[u8]) -> Result<ReplyFrame, DecodeError> {
    check_envelope(payload, REPLY_HEADER_LEN)?;
    let status = Status::from_u8(payload[5]).ok_or(DecodeError::BadStatus(payload[5]))?;
    let code = payload[6];
    let id = u64_at(payload, 8);
    let count = u32_at(payload, 16);
    let required = REPLY_HEADER_LEN + 2 * count as usize;
    if payload.len() != required {
        return Err(DecodeError::LengthMismatch {
            required,
            got: payload.len(),
        });
    }
    Ok(ReplyFrame {
        status,
        code,
        id,
        codes: codes_at(payload, REPLY_HEADER_LEN, count as usize),
    })
}

/// Reads one length-prefixed payload off `reader`.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer hung
/// up between frames). The length prefix is validated against
/// `max_payload` *before* any allocation, so a hostile 4 GiB length
/// costs nothing.
///
/// # Errors
///
/// [`ReadError::TruncatedFrame`] when the stream dies mid-frame,
/// [`ReadError::Oversize`] for a declared length beyond `max_payload`,
/// [`ReadError::Io`] for transport failures.
pub fn read_payload(
    reader: &mut impl Read,
    max_payload: u32,
) -> Result<Option<Vec<u8>>, ReadError> {
    let mut payload = Vec::new();
    match read_payload_into(reader, max_payload, &mut payload)? {
        Some(_) => Ok(Some(payload)),
        None => Ok(None),
    }
}

/// Reads one length-prefixed payload off `reader` into a reusable buffer.
///
/// Same contract as [`read_payload`], but the caller owns the allocation:
/// a pipelined client can read thousands of replies through one buffer
/// without churning the allocator. Returns `Ok(Some(len))` with `buf`
/// holding exactly `len` freshly-read bytes, or `Ok(None)` on a clean EOF
/// at a frame boundary.
///
/// The cursor is reset (`buf.clear()`) before any byte of the new frame
/// lands, and on every error path `buf` is truncated to the bytes that
/// actually arrived — so stale bytes from a previous (possibly larger)
/// frame can never survive into this one and be misread as a header or
/// payload tail.
///
/// # Errors
///
/// [`ReadError::TruncatedFrame`] when the stream dies mid-frame,
/// [`ReadError::Oversize`] for a declared length beyond `max_payload`,
/// [`ReadError::Io`] for transport failures.
pub fn read_payload_into(
    reader: &mut impl Read,
    max_payload: u32,
    buf: &mut Vec<u8>,
) -> Result<Option<usize>, ReadError> {
    // Frame boundary: whatever the previous frame (or a failed read)
    // left behind is invalidated before a single new byte is read.
    buf.clear();
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match reader.read(&mut len_bytes[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None); // clean EOF between frames
                }
                return Err(ReadError::TruncatedFrame {
                    declared: 0,
                    got: filled,
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    let declared = u32::from_le_bytes(len_bytes);
    if declared > max_payload {
        return Err(ReadError::Oversize {
            declared,
            max: max_payload,
        });
    }
    buf.resize(declared as usize, 0);
    let mut got = 0;
    while got < declared as usize {
        match reader.read(&mut buf[got..]) {
            Ok(0) => {
                // Keep only the bytes that actually arrived: a caller
                // that ignores the error and peeks at the buffer must
                // not see zero padding posing as payload.
                buf.truncate(got);
                return Err(ReadError::TruncatedFrame {
                    declared: declared as usize,
                    got,
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                buf.truncate(got);
                return Err(ReadError::Io(e));
            }
        }
    }
    Ok(Some(declared as usize))
}

/// The request-payload byte bound implied by an operand bound.
#[must_use]
pub fn max_request_payload(max_ops: u32) -> u32 {
    REQUEST_HEADER_LEN as u32 + 2 * max_ops
}

/// The reply-payload byte bound implied by an operand bound.
#[must_use]
pub fn max_reply_payload(max_ops: u32) -> u32 {
    REPLY_HEADER_LEN as u32 + 2 * max_ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q411() -> QFormat {
        QFormat::new(4, 11).unwrap()
    }

    fn frame(codes: Vec<i16>) -> RequestFrame {
        RequestFrame {
            function: Function::Tanh,
            format: q411(),
            id: 42,
            deadline_micros: 1_000,
            codes,
        }
    }

    #[test]
    fn request_round_trips() {
        let f = frame(vec![-3, 0, 1, i16::MAX, i16::MIN]);
        let bytes = encode_request(&f);
        assert_eq!(
            bytes.len(),
            4 + REQUEST_HEADER_LEN + 2 * f.codes.len(),
            "length prefix + header + codes"
        );
        let decoded = decode_request(&bytes[4..], 1 << 16).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn reply_round_trips() {
        let f = ReplyFrame {
            status: Status::Ok,
            code: code::NONE,
            id: 7,
            codes: vec![100, -100],
        };
        let bytes = encode_reply(&f);
        let decoded = decode_reply(&bytes[4..]).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn control_replies_carry_no_codes() {
        let busy = ReplyFrame::control(Status::Busy, code::NONE, 9);
        let bytes = encode_reply(&busy);
        assert_eq!(bytes.len(), 4 + REPLY_HEADER_LEN);
        assert_eq!(decode_reply(&bytes[4..]).unwrap(), busy);
    }

    #[test]
    fn malformed_payloads_yield_typed_errors() {
        let good = encode_request(&frame(vec![1, 2]));
        let payload = &good[4..];

        let mut bad_magic = payload.to_vec();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            decode_request(&bad_magic, 64),
            Err(DecodeError::BadMagic(_))
        ));

        let mut bad_version = payload.to_vec();
        bad_version[4] = 9;
        assert_eq!(
            decode_request(&bad_version, 64),
            Err(DecodeError::BadVersion(9))
        );

        let mut bad_function = payload.to_vec();
        bad_function[5] = 200;
        assert_eq!(
            decode_request(&bad_function, 64),
            Err(DecodeError::BadFunction(200))
        );

        let mut bad_format = payload.to_vec();
        bad_format[6] = 0;
        bad_format[7] = 0;
        assert_eq!(
            decode_request(&bad_format, 64),
            Err(DecodeError::BadFormat {
                int_bits: 0,
                frac_bits: 0
            })
        );

        assert!(matches!(
            decode_request(&payload[..10], 64),
            Err(DecodeError::Truncated {
                needed: 28,
                got: 10
            })
        ));

        let mut short = payload.to_vec();
        short.pop();
        assert!(matches!(
            decode_request(&short, 64),
            Err(DecodeError::LengthMismatch { .. })
        ));

        assert!(matches!(
            decode_request(payload, 1),
            Err(DecodeError::Oversize { count: 2, max: 1 })
        ));
    }

    #[test]
    fn zero_count_is_an_empty_batch_error() {
        let mut f = frame(vec![1]);
        f.codes.clear();
        // Hand-roll: encode_request of an empty frame declares count 0.
        let bytes = encode_request(&f);
        assert_eq!(
            decode_request(&bytes[4..], 64),
            Err(DecodeError::EmptyBatch)
        );
    }

    #[test]
    fn operands_reject_codes_outside_narrow_formats() {
        let mut f = frame(vec![1, 30_000]);
        f.format = QFormat::new(2, 5).unwrap(); // 8-bit: raw range ±127
        assert!(matches!(
            f.operands(),
            Err(DecodeError::CodeOutOfRange {
                index: 1,
                code: 30_000
            })
        ));
    }

    #[test]
    fn read_payload_handles_eof_truncation_and_oversize() {
        use std::io::Cursor;
        // Clean EOF between frames.
        assert!(read_payload(&mut Cursor::new(Vec::new()), 64)
            .unwrap()
            .is_none());
        // EOF mid-length-prefix.
        assert!(matches!(
            read_payload(&mut Cursor::new(vec![1, 2]), 64),
            Err(ReadError::TruncatedFrame { got: 2, .. })
        ));
        // EOF mid-payload.
        let mut bytes = 8u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 3]);
        assert!(matches!(
            read_payload(&mut Cursor::new(bytes), 64),
            Err(ReadError::TruncatedFrame {
                declared: 8,
                got: 3
            })
        ));
        // Hostile length prefix, rejected before allocation.
        let huge = u32::MAX.to_le_bytes().to_vec();
        assert!(matches!(
            read_payload(&mut Cursor::new(huge), 64),
            Err(ReadError::Oversize { max: 64, .. })
        ));
    }

    #[test]
    fn reused_buffer_never_leaks_stale_bytes_across_frames() {
        use std::io::Cursor;
        // One stream: a full 6-byte frame, then a frame that declares 10
        // bytes but dies after 3, then (on a fresh reader) a 2-byte frame.
        let mut stream = 6u32.to_le_bytes().to_vec();
        stream.extend_from_slice(b"AAAAAA");
        stream.extend_from_slice(&10u32.to_le_bytes());
        stream.extend_from_slice(b"BBB");

        let mut reader = Cursor::new(stream);
        let mut buf = vec![0xEE; 32]; // dirty from "previous use"

        // Frame 1: the dirty buffer is fully replaced, not appended to.
        assert_eq!(
            read_payload_into(&mut reader, 64, &mut buf).unwrap(),
            Some(6)
        );
        assert_eq!(buf, b"AAAAAA");

        // Frame 2 truncates mid-payload: typed error, and the buffer
        // holds only the 3 bytes that arrived — no 'A' tail from frame 1,
        // no zero padding out to the declared 10.
        assert!(matches!(
            read_payload_into(&mut reader, 64, &mut buf),
            Err(ReadError::TruncatedFrame {
                declared: 10,
                got: 3
            })
        ));
        assert_eq!(buf, b"BBB");

        // Frame 3 on a fresh reader: the same buffer, still carrying
        // frame 2's residue, yields exactly the new frame's bytes.
        let mut tail = 2u32.to_le_bytes().to_vec();
        tail.extend_from_slice(b"CC");
        let mut reader = Cursor::new(tail);
        assert_eq!(
            read_payload_into(&mut reader, 64, &mut buf).unwrap(),
            Some(2)
        );
        assert_eq!(buf, b"CC");
    }

    #[test]
    fn read_payload_into_survives_single_byte_reads() {
        // A reader that trickles one byte per call exercises every
        // partial-fill branch of the header and payload loops.
        struct Trickle(Vec<u8>, usize);
        impl std::io::Read for Trickle {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() || out.is_empty() {
                    return Ok(0);
                }
                out[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let f = ReplyFrame {
            status: Status::Ok,
            code: code::NONE,
            id: 3,
            codes: vec![7, -7, 0],
        };
        let bytes = encode_reply(&f);
        let mut reader = Trickle(bytes, 0);
        let mut buf = Vec::new();
        let len = read_payload_into(&mut reader, 64, &mut buf)
            .unwrap()
            .unwrap();
        assert_eq!(len, buf.len());
        assert_eq!(decode_reply(&buf).unwrap(), f);
        // Clean EOF at the next boundary leaves the buffer empty.
        assert!(read_payload_into(&mut reader, 64, &mut buf)
            .unwrap()
            .is_none());
        assert!(buf.is_empty());
    }

    #[test]
    fn function_ids_round_trip_and_exclude_mac() {
        for f in [
            Function::Sigmoid,
            Function::Tanh,
            Function::Exp,
            Function::Softmax,
        ] {
            let id = function_id(f).unwrap();
            assert_eq!(function_from_id(id), Some(f));
        }
        assert_eq!(function_id(Function::Mac), None);
        assert_eq!(function_from_id(4), None);
    }
}
