//! A blocking, pipelined client for the NACU wire protocol.
//!
//! [`NetClient`] keeps many request ids in flight on one socket: call
//! [`NetClient::send`] repeatedly, then collect replies with
//! [`NetClient::recv`] — replies arrive in *completion* order, so match
//! them to requests by the echoed id, or use [`NetClient::call`] for the
//! simple one-in-one-out pattern.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use nacu::Function;
use nacu_fixed::Fx;

use crate::proto::{
    decode_reply, encode_request, max_reply_payload, read_payload_into, DecodeError, ReadError,
    ReplyFrame, RequestFrame,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed or the server hung up mid-frame.
    Read(ReadError),
    /// The server closed the connection at a frame boundary.
    Disconnected,
    /// The server sent bytes that do not decode as a reply.
    Malformed(DecodeError),
    /// Writing the request failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Read(e) => write!(f, "read failed: {e}"),
            Self::Disconnected => write!(f, "server closed the connection"),
            Self::Malformed(e) => write!(f, "malformed reply: {e}"),
            Self::Io(e) => write!(f, "write failed: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A blocking pipelined connection to a [`crate::server::serve`] plane.
#[derive(Debug)]
pub struct NetClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Reply payload buffer, reused across pipelined frames. The cursor
    /// is reset at every frame boundary by [`read_payload_into`], so a
    /// short read mid-frame can never leave a previous reply's bytes
    /// posing as the next frame's header or payload.
    recv_buf: Vec<u8>,
    next_id: u64,
    max_reply_ops: u32,
}

impl NetClient {
    /// Connects to a serving plane.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self {
            writer,
            reader,
            recv_buf: Vec::new(),
            next_id: 1,
            max_reply_ops: 1 << 20,
        })
    }

    /// Sends one request frame without waiting; returns the request id
    /// to match against [`ReplyFrame::id`]. `deadline_micros` of 0 means
    /// no deadline.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the write fails.
    pub fn send(
        &mut self,
        function: Function,
        operands: &[Fx],
        deadline_micros: u64,
    ) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let format = operands.first().map_or_else(
            || nacu_fixed::QFormat::new(4, 11).expect("paper format"),
            Fx::format,
        );
        let frame = RequestFrame {
            function,
            format,
            id,
            deadline_micros,
            codes: operands.iter().map(|fx| fx.raw() as i16).collect(),
        };
        self.writer
            .write_all(&encode_request(&frame))
            .map_err(ClientError::Io)?;
        Ok(id)
    }

    /// Blocks for the next reply frame, whichever request it answers.
    ///
    /// # Errors
    ///
    /// [`ClientError::Disconnected`] on a clean server hang-up,
    /// [`ClientError::Read`] / [`ClientError::Malformed`] otherwise.
    pub fn recv(&mut self) -> Result<ReplyFrame, ClientError> {
        read_payload_into(
            &mut self.reader,
            max_reply_payload(self.max_reply_ops),
            &mut self.recv_buf,
        )
        .map_err(ClientError::Read)?
        .ok_or(ClientError::Disconnected)?;
        decode_reply(&self.recv_buf).map_err(ClientError::Malformed)
    }

    /// Send + receive for unpipelined callers. The received reply is
    /// the next completion on the socket; with no other requests in
    /// flight it necessarily answers this call.
    ///
    /// # Errors
    ///
    /// As [`NetClient::send`] and [`NetClient::recv`].
    pub fn call(
        &mut self,
        function: Function,
        operands: &[Fx],
        deadline_micros: u64,
    ) -> Result<ReplyFrame, ClientError> {
        self.send(function, operands, deadline_micros)?;
        self.recv()
    }

    /// Sends raw pre-encoded bytes — the robustness tests' way of
    /// feeding the server garbage through a real socket.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the write fails.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.writer.write_all(bytes).map_err(ClientError::Io)
    }

    /// Half-closes the write side so the server sees a clean EOF while
    /// replies can still be read.
    pub fn finish_sending(&mut self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Write);
    }
}
