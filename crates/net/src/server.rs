//! The admission-controlled TCP serving plane.
//!
//! One accept thread guards the connection limit; each accepted socket
//! gets a reader thread (decode → admission → engine submit) and a
//! writer thread (poll in-flight tickets, write replies in completion
//! order). Pipelining is native: a client may have many request ids in
//! flight on one socket, and replies carry the id so order never
//! matters. Admission is layered, cheapest first:
//!
//! 1. **Protocol** — malformed frames get one ERROR(PROTOCOL) reply and
//!    the connection closes (the stream cannot be resynchronised).
//! 2. **Quota** — the per-client token bucket refuses with QUOTA.
//! 3. **Shed** — a request whose deadline budget is below the modeled
//!    hardware floor ([`modeled_batch_cycles`] at the paper clock) is
//!    refused with SHED before touching the queue; a deadline that
//!    expires while queued becomes SHED at completion.
//! 4. **Backpressure** — the engine's bounded queue refusing a push
//!    becomes a BUSY reply, never a dropped connection.
//!
//! Every admission outcome lands in the engine's `net_*` counters via
//! [`EngineHandle::live_metrics`], so the `/metrics` scrape sees the
//! network plane with zero extra plumbing.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{IpAddr, Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use nacu_engine::report::{modeled_batch_cycles, PAPER_CLOCK_HZ};
use nacu_engine::{EngineHandle, EngineMetrics, SubmitError, Ticket, WaitError};

use crate::proto::{
    code, decode_request, encode_reply, max_request_payload, read_payload, ReadError, ReplyFrame,
    RequestFrame, Status,
};

/// Writer-thread poll interval while tickets are in flight.
const POLL_INTERVAL: Duration = Duration::from_micros(50);

/// Per-client rate limit for the token bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quota {
    /// Sustained requests per second refilled into the bucket.
    pub rate_per_sec: f64,
    /// Maximum burst the bucket can hold.
    pub burst: f64,
}

/// Tunables for [`serve`]. `Default` is sized for loopback serving.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Concurrent connections served; further accepts are counted
    /// rejected and closed immediately.
    pub max_connections: usize,
    /// Operands accepted per request frame; larger frames are protocol
    /// errors (and their byte length bounds allocation up front).
    pub max_frame_ops: u32,
    /// In-flight requests per connection; the reader stops decoding
    /// (TCP backpressure) once this many tickets are outstanding.
    pub max_inflight_per_conn: usize,
    /// Per-client-IP token bucket; `None` disables quota enforcement.
    pub quota: Option<Quota>,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            max_frame_ops: 1 << 16,
            max_inflight_per_conn: 64,
            quota: None,
        }
    }
}

/// A running network serving plane. Dropping it (or calling
/// [`NetServer::shutdown`]) stops the listener; the engine keeps
/// serving in-process work either way.
#[derive(Debug)]
pub struct NetServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl NetServer {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting; existing connections drain and close.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Token buckets keyed by client IP, shared across connections.
#[derive(Debug)]
struct Buckets {
    quota: Quota,
    by_ip: Mutex<HashMap<IpAddr, Bucket>>,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refilled_at: Instant,
}

impl Buckets {
    fn admit(&self, ip: IpAddr) -> bool {
        let mut by_ip = self.by_ip.lock().expect("bucket lock");
        let now = Instant::now();
        let bucket = by_ip.entry(ip).or_insert(Bucket {
            tokens: self.quota.burst,
            refilled_at: now,
        });
        let elapsed = now.duration_since(bucket.refilled_at).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.quota.rate_per_sec).min(self.quota.burst);
        bucket.refilled_at = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// What the reader hands the writer for one admitted request.
struct Pending {
    client_id: u64,
    ticket: Ticket,
}

/// Reader/writer shared state for one connection.
struct ConnState {
    /// Control replies (BUSY/SHED/QUOTA/ERROR) ready to write.
    immediates: VecDeque<ReplyFrame>,
    /// Admitted requests whose tickets the writer polls.
    pending: VecDeque<Pending>,
    /// The reader saw EOF or a fatal error; writer drains and exits.
    reader_done: bool,
    /// The writer hit a write error; reader should stop decoding.
    writer_dead: bool,
}

struct Conn {
    state: Mutex<ConnState>,
    wake: Condvar,
}

/// Starts the serving plane for `handle` on `addr`.
///
/// # Errors
///
/// The bind failure from [`TcpListener::bind`], or `InvalidInput` when
/// the engine's format is wider than the wire's 16-bit codes.
pub fn serve(
    handle: &EngineHandle,
    addr: impl ToSocketAddrs,
    config: NetConfig,
) -> std::io::Result<NetServer> {
    if handle.format().total_bits() > 16 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "wire codes are i16: engine formats wider than 16 bits are not servable",
        ));
    }
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let metrics = handle.live_metrics();
    let buckets = config.quota.map(|quota| {
        Arc::new(Buckets {
            quota,
            by_ip: Mutex::new(HashMap::new()),
        })
    });
    let accept_thread = {
        let stop = Arc::clone(&stop);
        let handle = handle.clone();
        let config = config.clone();
        thread::Builder::new()
            .name("nacu-net-accept".into())
            .spawn(move || {
                accept_loop(&listener, &handle, &metrics, &config, buckets, &stop);
            })?
    };
    Ok(NetServer {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

#[allow(clippy::needless_pass_by_value)]
fn accept_loop(
    listener: &TcpListener,
    handle: &EngineHandle,
    metrics: &Arc<EngineMetrics>,
    config: &NetConfig,
    buckets: Option<Arc<Buckets>>,
    stop: &Arc<AtomicBool>,
) {
    let live = Arc::new(AtomicUsize::new(0));
    let next_conn_id = AtomicU32::new(1);
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if live.load(Ordering::Acquire) >= config.max_connections {
            metrics.record_net_connection_rejected();
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        metrics.record_net_connection_accepted();
        live.fetch_add(1, Ordering::AcqRel);
        let conn_id = next_conn_id.fetch_add(1, Ordering::Relaxed);
        let handle = handle.clone();
        let metrics = Arc::clone(metrics);
        let config = config.clone();
        let buckets = buckets.clone();
        let conn_live = Arc::clone(&live);
        let spawned = thread::Builder::new()
            .name(format!("nacu-net-conn-{conn_id}"))
            .spawn(move || {
                serve_connection(stream, conn_id, &handle, &metrics, &config, buckets);
                conn_live.fetch_sub(1, Ordering::AcqRel);
            });
        if spawned.is_err() {
            live.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    conn_id: u32,
    handle: &EngineHandle,
    metrics: &Arc<EngineMetrics>,
    config: &NetConfig,
    buckets: Option<Arc<Buckets>>,
) {
    let Ok(write_half) = stream.try_clone() else {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    };
    let conn = Arc::new(Conn {
        state: Mutex::new(ConnState {
            immediates: VecDeque::new(),
            pending: VecDeque::new(),
            reader_done: false,
            writer_dead: false,
        }),
        wake: Condvar::new(),
    });
    let writer = {
        let conn = Arc::clone(&conn);
        let metrics = Arc::clone(metrics);
        thread::Builder::new()
            .name(format!("nacu-net-write-{conn_id}"))
            .spawn(move || writer_loop(write_half, &conn, &metrics))
    };
    read_loop(stream, conn_id, handle, metrics, config, buckets, &conn);
    {
        let mut state = conn.state.lock().expect("conn lock");
        state.reader_done = true;
        conn.wake.notify_all();
    }
    if let Ok(writer) = writer {
        let _ = writer.join();
    }
}

/// Decode → admission → submit, blocking on the in-flight bound.
fn read_loop(
    stream: TcpStream,
    conn_id: u32,
    handle: &EngineHandle,
    metrics: &Arc<EngineMetrics>,
    config: &NetConfig,
    buckets: Option<Arc<Buckets>>,
    conn: &Arc<Conn>,
) {
    let peer_ip = stream.peer_addr().map(|a| a.ip()).ok();
    let mut reader = std::io::BufReader::new(stream);
    let max_payload = max_request_payload(config.max_frame_ops);
    loop {
        let payload = match read_payload(&mut reader, max_payload) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean EOF
            Err(ReadError::Oversize { .. }) => {
                metrics.record_net_protocol_error();
                enqueue_immediate(
                    conn,
                    metrics,
                    ReplyFrame::control(Status::Error, code::PROTOCOL, 0),
                );
                return;
            }
            Err(ReadError::TruncatedFrame { .. } | ReadError::Io(_)) => {
                // The stream died mid-frame: nothing to answer to.
                metrics.record_net_protocol_error();
                return;
            }
        };
        let frame = match decode_request(&payload, config.max_frame_ops) {
            Ok(frame) => frame,
            Err(_) => {
                metrics.record_net_protocol_error();
                enqueue_immediate(
                    conn,
                    metrics,
                    ReplyFrame::control(Status::Error, code::PROTOCOL, 0),
                );
                return; // cannot resync a corrupt stream
            }
        };
        metrics.record_net_frame_in();
        let reply = admit(frame, conn_id, handle, metrics, config, &buckets, peer_ip);
        match reply {
            Admission::Immediate(frame) => enqueue_immediate(conn, metrics, frame),
            Admission::InFlight(pending) => {
                let mut state = conn.state.lock().expect("conn lock");
                while state.pending.len() >= config.max_inflight_per_conn && !state.writer_dead {
                    state = conn.wake.wait(state).expect("conn lock");
                }
                if state.writer_dead {
                    return;
                }
                state.pending.push_back(pending);
            }
        }
        if conn.state.lock().expect("conn lock").writer_dead {
            return;
        }
    }
}

enum Admission {
    /// Answered without touching the engine (or rejected by it).
    Immediate(ReplyFrame),
    /// Enqueued; the writer polls the ticket.
    InFlight(Pending),
}

fn admit(
    frame: RequestFrame,
    conn_id: u32,
    handle: &EngineHandle,
    metrics: &Arc<EngineMetrics>,
    _config: &NetConfig,
    buckets: &Option<Arc<Buckets>>,
    peer_ip: Option<IpAddr>,
) -> Admission {
    let client_id = frame.id;
    // Quota before any per-operand work: refusals must stay cheap.
    if let (Some(buckets), Some(ip)) = (buckets.as_ref(), peer_ip) {
        if !buckets.admit(ip) {
            metrics.record_net_quota_limited();
            return Admission::Immediate(ReplyFrame::control(Status::Quota, code::NONE, client_id));
        }
    }
    // Deadline shedding: refuse work the hardware model says cannot
    // finish in budget. `modeled_batch_cycles / PAPER_CLOCK_HZ` is the
    // floor a batch of this shape costs on one unit with zero queueing,
    // so any budget below it is deterministically unmeetable.
    let budget = (frame.deadline_micros > 0).then(|| Duration::from_micros(frame.deadline_micros));
    if let Some(budget) = budget {
        let floor_secs =
            modeled_batch_cycles(frame.function, frame.codes.len()) as f64 / PAPER_CLOCK_HZ;
        if budget.as_secs_f64() < floor_secs {
            metrics.record_net_request_shed();
            return Admission::Immediate(ReplyFrame::control(Status::Shed, code::NONE, client_id));
        }
    }
    let operands = match frame.operands() {
        Ok(operands) => operands,
        Err(_) => {
            metrics.record_net_protocol_error();
            return Admission::Immediate(ReplyFrame::control(
                Status::Error,
                code::PROTOCOL,
                client_id,
            ));
        }
    };
    let mut request = nacu_engine::Request::new(frame.function, operands).with_client(conn_id);
    if let Some(budget) = budget {
        request = request.with_deadline(Instant::now() + budget);
    }
    match handle.submit(request) {
        Ok(ticket) => Admission::InFlight(Pending { client_id, ticket }),
        Err(SubmitError::Busy { .. }) => {
            Admission::Immediate(ReplyFrame::control(Status::Busy, code::NONE, client_id))
        }
        Err(SubmitError::ShuttingDown) => Admission::Immediate(ReplyFrame::control(
            Status::Error,
            code::SHUTTING_DOWN,
            client_id,
        )),
        Err(SubmitError::Invalid(_)) => Admission::Immediate(ReplyFrame::control(
            Status::Error,
            code::INVALID_REQUEST,
            client_id,
        )),
    }
}

fn enqueue_immediate(conn: &Arc<Conn>, _metrics: &Arc<EngineMetrics>, frame: ReplyFrame) {
    let mut state = conn.state.lock().expect("conn lock");
    state.immediates.push_back(frame);
    conn.wake.notify_all();
}

/// Polls in-flight tickets and writes replies in completion order.
fn writer_loop(mut stream: TcpStream, conn: &Arc<Conn>, metrics: &Arc<EngineMetrics>) {
    let mut ready: Vec<ReplyFrame> = Vec::new();
    loop {
        ready.clear();
        let done = {
            let mut state = conn.state.lock().expect("conn lock");
            ready.extend(state.immediates.drain(..));
            // Completion order, not submission order: any finished
            // ticket anywhere in the deque replies now.
            let mut index = 0;
            while index < state.pending.len() {
                let Some(outcome) = state.pending[index].ticket.try_wait() else {
                    index += 1;
                    continue;
                };
                let pending = state.pending.remove(index).expect("polled index");
                ready.push(completion_reply(pending.client_id, outcome, metrics));
            }
            if !state.pending.is_empty() || !ready.is_empty() {
                conn.wake.notify_all(); // reader may be blocked on the bound
            }
            state.reader_done && state.pending.is_empty() && ready.is_empty()
        };
        if done {
            return;
        }
        if ready.is_empty() {
            thread::sleep(POLL_INTERVAL);
            continue;
        }
        for frame in &ready {
            metrics.record_net_frame_out();
            if stream.write_all(&encode_reply(frame)).is_err() {
                let mut state = conn.state.lock().expect("conn lock");
                state.writer_dead = true;
                conn.wake.notify_all();
                return;
            }
        }
        let _ = stream.flush();
    }
}

/// Maps one ticket outcome onto its wire reply.
fn completion_reply(
    client_id: u64,
    outcome: Result<nacu_engine::Response, WaitError>,
    metrics: &Arc<EngineMetrics>,
) -> ReplyFrame {
    match outcome {
        Ok(response) => ReplyFrame {
            status: Status::Ok,
            code: code::NONE,
            id: client_id,
            codes: response.outputs.iter().map(|fx| fx.raw() as i16).collect(),
        },
        Err(WaitError::DeadlineExpired) => {
            metrics.record_net_request_shed();
            ReplyFrame::control(Status::Shed, code::NONE, client_id)
        }
        Err(WaitError::EngineShutDown) => {
            ReplyFrame::control(Status::Error, code::SHUTTING_DOWN, client_id)
        }
        Err(WaitError::FaultDetected { .. } | WaitError::NoHealthyWorkers) => {
            ReplyFrame::control(Status::Error, code::FAULT, client_id)
        }
        Err(WaitError::Timeout) => ReplyFrame::control(Status::Error, code::INTERNAL, client_id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_admits_burst_then_refuses() {
        let buckets = Buckets {
            quota: Quota {
                rate_per_sec: 0.0001, // effectively no refill inside a test
                burst: 3.0,
            },
            by_ip: Mutex::new(HashMap::new()),
        };
        let ip: IpAddr = "127.0.0.1".parse().unwrap();
        assert!(buckets.admit(ip));
        assert!(buckets.admit(ip));
        assert!(buckets.admit(ip));
        assert!(!buckets.admit(ip), "burst exhausted");
        let other: IpAddr = "10.0.0.1".parse().unwrap();
        assert!(buckets.admit(other), "buckets are per client");
    }

    #[test]
    fn token_bucket_refills_over_time() {
        let buckets = Buckets {
            quota: Quota {
                rate_per_sec: 1_000_000.0,
                burst: 1.0,
            },
            by_ip: Mutex::new(HashMap::new()),
        };
        let ip: IpAddr = "127.0.0.1".parse().unwrap();
        assert!(buckets.admit(ip));
        thread::sleep(Duration::from_millis(2));
        assert!(buckets.admit(ip), "refilled after waiting");
    }

    #[test]
    fn default_config_is_sane() {
        let c = NetConfig::default();
        assert!(c.max_connections > 0);
        assert!(c.max_frame_ops > 0);
        assert!(c.max_inflight_per_conn > 0);
        assert!(c.quota.is_none());
    }
}
