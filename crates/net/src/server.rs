//! The admission-controlled TCP serving plane.
//!
//! One accept thread guards the connection limit; each accepted socket
//! gets a reader thread (decode → admission → engine submit). Replies
//! are written by a small **fixed pool of event-driven dispatchers**:
//! every admitted ticket is registered, keyed by its engine
//! `request_id`, in one dispatcher's [`CompletionSet`], and the
//! dispatcher parks until completions wake it — no thread count that
//! scales with connections, no polling interval. Control replies
//! (BUSY/SHED/QUOTA/ERROR) are written directly by the reader; the
//! per-connection write half sits behind a mutex so frames never
//! interleave. Pipelining is native: a client may have many request ids
//! in flight on one socket, replies carry the id and arrive in
//! completion order.
//!
//! Admission is layered, cheapest first:
//!
//! 1. **Protocol** — malformed frames get one ERROR(PROTOCOL) reply and
//!    the connection closes (the stream cannot be resynchronised).
//! 2. **Quota** — the per-client token bucket refuses with QUOTA.
//! 3. **Shed** — a request whose deadline budget is below the modeled
//!    hardware floor ([`modeled_batch_cycles`] at the paper clock) is
//!    refused with SHED before touching the queue; a deadline that
//!    expires while queued becomes SHED at completion.
//! 4. **Backpressure** — the engine's bounded queue refusing a push
//!    becomes a BUSY reply, never a dropped connection.
//!
//! Every admission outcome lands in the engine's `net_*` counters via
//! [`EngineHandle::live_metrics`], and the dispatcher pool feeds the
//! `async_*` counters, so the `/metrics` scrape sees the network plane
//! with zero extra plumbing.

use std::collections::HashMap;
use std::io::Write;
use std::net::{IpAddr, Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use nacu_engine::report::{modeled_batch_cycles, PAPER_CLOCK_HZ};
use nacu_engine::{
    CompletionNotifier, CompletionSet, EngineHandle, EngineMetrics, SubmitError, Ticket, WaitError,
};

use crate::proto::{
    code, decode_request, encode_reply, max_request_payload, read_payload, ReadError, ReplyFrame,
    RequestFrame, Status,
};

/// Per-client rate limit for the token bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quota {
    /// Sustained requests per second refilled into the bucket.
    pub rate_per_sec: f64,
    /// Maximum burst the bucket can hold.
    pub burst: f64,
}

/// Tunables for [`serve`]. `Default` is sized for loopback serving.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Concurrent connections served; further accepts are counted
    /// rejected and closed immediately.
    pub max_connections: usize,
    /// Operands accepted per request frame; larger frames are protocol
    /// errors (and their byte length bounds allocation up front).
    pub max_frame_ops: u32,
    /// In-flight requests per connection; the reader stops decoding
    /// (TCP backpressure) once this many tickets are outstanding.
    pub max_inflight_per_conn: usize,
    /// Per-client-IP token bucket; `None` disables quota enforcement.
    pub quota: Option<Quota>,
    /// Reply dispatcher threads shared by every connection (clamped to
    /// ≥ 1). The whole serving plane uses this fixed pool, however many
    /// sockets are open.
    pub dispatchers: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            max_frame_ops: 1 << 16,
            max_inflight_per_conn: 64,
            quota: None,
            dispatchers: 2,
        }
    }
}

/// A running network serving plane. Dropping it (or calling
/// [`NetServer::shutdown`]) stops the listener and drains the reply
/// dispatchers; the engine keeps serving in-process work either way.
#[derive(Debug)]
pub struct NetServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    dispatchers: Option<Arc<DispatcherPool>>,
}

impl NetServer {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting, then drains and joins the reply dispatchers.
    /// Connections still open keep their readers, but work admitted
    /// after this point is answered ERROR(SHUTTING_DOWN).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(pool) = self.dispatchers.take() {
            pool.shutdown();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Token buckets keyed by client IP, shared across connections.
#[derive(Debug)]
struct Buckets {
    quota: Quota,
    by_ip: Mutex<HashMap<IpAddr, Bucket>>,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refilled_at: Instant,
}

impl Buckets {
    fn admit(&self, ip: IpAddr) -> bool {
        let mut by_ip = self.by_ip.lock().expect("bucket lock");
        let now = Instant::now();
        let bucket = by_ip.entry(ip).or_insert(Bucket {
            tokens: self.quota.burst,
            refilled_at: now,
        });
        let elapsed = now.duration_since(bucket.refilled_at).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.quota.rate_per_sec).min(self.quota.burst);
        bucket.refilled_at = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// One connection's write side plus its in-flight accounting. The
/// reader holds it for immediates and admission; dispatchers hold it
/// (via each routed ticket) for completion replies.
#[derive(Debug)]
struct Conn {
    /// Write half; every reply frame is written whole under this lock,
    /// so reader immediates and dispatcher completions never interleave.
    stream: Mutex<TcpStream>,
    /// Admitted-but-unreplied requests, bounded by
    /// [`NetConfig::max_inflight_per_conn`].
    inflight: Mutex<usize>,
    /// Signals slot release (and death) to a reader blocked on the bound.
    room: Condvar,
    /// A write failed (or the peer died): stop decoding, drop replies.
    dead: AtomicBool,
}

impl Conn {
    fn new(write_half: TcpStream) -> Self {
        Self {
            stream: Mutex::new(write_half),
            inflight: Mutex::new(0),
            room: Condvar::new(),
            dead: AtomicBool::new(false),
        }
    }

    /// Writes one reply frame (counted even if the write then fails,
    /// matching the pre-dispatcher accounting). On error the connection
    /// is marked dead and both socket halves are shut down so a blocked
    /// reader unsticks.
    fn write_reply(&self, frame: &ReplyFrame, metrics: &EngineMetrics) {
        if self.dead.load(Ordering::Acquire) {
            return;
        }
        metrics.record_net_frame_out();
        let failed = {
            let mut stream = self.stream.lock().expect("stream lock");
            stream
                .write_all(&encode_reply(frame))
                .and_then(|()| stream.flush())
                .is_err()
        };
        if failed {
            self.mark_dead();
        }
    }

    fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
        let _ = self
            .stream
            .lock()
            .expect("stream lock")
            .shutdown(Shutdown::Both);
        // Wake a reader parked on the in-flight bound.
        drop(self.inflight.lock().expect("inflight lock"));
        self.room.notify_all();
    }

    /// Blocks until an in-flight slot frees up; `false` once dead.
    fn acquire_slot(&self, max_inflight: usize) -> bool {
        let mut inflight = self.inflight.lock().expect("inflight lock");
        while *inflight >= max_inflight && !self.dead.load(Ordering::Acquire) {
            inflight = self.room.wait(inflight).expect("inflight lock");
        }
        if self.dead.load(Ordering::Acquire) {
            return false;
        }
        *inflight += 1;
        true
    }

    fn release_slot(&self) {
        let mut inflight = self.inflight.lock().expect("inflight lock");
        *inflight = inflight.saturating_sub(1);
        drop(inflight);
        self.room.notify_all();
    }
}

/// One admitted request handed from a reader to a dispatcher.
#[derive(Debug)]
struct RouteEntry {
    client_id: u64,
    ticket: Ticket,
    conn: Arc<Conn>,
}

#[derive(Debug)]
struct Inbox {
    entries: Vec<RouteEntry>,
    /// Set under the lock by shutdown; once observed true, no further
    /// submissions are accepted, so the dispatcher can exit without a
    /// hand-off race.
    closed: bool,
}

#[derive(Debug)]
struct Shard {
    inbox: Mutex<Inbox>,
    notifier: CompletionNotifier,
}

/// The fixed pool of event-driven reply dispatchers. Readers hand each
/// admitted ticket to a shard (round-robin); the shard's driver thread
/// multiplexes every in-flight ticket it owns on one [`CompletionSet`],
/// parks until completions arrive, and writes the replies.
#[derive(Debug)]
struct DispatcherPool {
    shards: Vec<Arc<Shard>>,
    next: AtomicUsize,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl DispatcherPool {
    fn start(count: usize, metrics: &Arc<EngineMetrics>) -> Self {
        let count = count.max(1);
        let mut shards = Vec::with_capacity(count);
        let mut threads = Vec::with_capacity(count);
        for index in 0..count {
            let set = CompletionSet::new().with_metrics(Arc::clone(metrics));
            let shard = Arc::new(Shard {
                inbox: Mutex::new(Inbox {
                    entries: Vec::new(),
                    closed: false,
                }),
                notifier: set.notifier(),
            });
            shards.push(Arc::clone(&shard));
            let metrics = Arc::clone(metrics);
            if let Ok(thread) = thread::Builder::new()
                .name(format!("nacu-net-dispatch-{index}"))
                .spawn(move || dispatcher_loop(&shard, set, &metrics))
            {
                threads.push(thread);
            }
        }
        Self {
            shards,
            next: AtomicUsize::new(0),
            threads: Mutex::new(threads),
        }
    }

    /// Routes one admitted ticket to a dispatcher. `Err` means the pool
    /// already shut down — the caller answers SHUTTING_DOWN itself.
    fn submit(&self, entry: RouteEntry) -> Result<(), RouteEntry> {
        let shard =
            &self.shards[self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len().max(1)];
        {
            let mut inbox = shard.inbox.lock().expect("inbox lock");
            if inbox.closed {
                return Err(entry);
            }
            inbox.entries.push(entry);
        }
        shard.notifier.notify();
        Ok(())
    }

    /// Closes every shard, then joins the drivers; each drains its
    /// remaining in-flight tickets before exiting, so admitted requests
    /// still get their replies. Idempotent — a second call finds the
    /// shards closed and no threads left to join.
    fn shutdown(&self) {
        for shard in &self.shards {
            shard.inbox.lock().expect("inbox lock").closed = true;
            shard.notifier.notify();
        }
        let threads = std::mem::take(&mut *self.threads.lock().expect("threads lock"));
        for thread in threads {
            let _ = thread.join();
        }
    }
}

/// One dispatcher: drain the inbox into the completion set, park until
/// completions (or a poke), write the finished replies, repeat. Exits
/// only when the shard is closed AND nothing is left in flight.
fn dispatcher_loop(shard: &Arc<Shard>, mut set: CompletionSet, metrics: &Arc<EngineMetrics>) {
    // request_id → (client-chosen reply id, connection).
    let mut routes: HashMap<u64, (u64, Arc<Conn>)> = HashMap::new();
    let mut completed: Vec<(u64, Result<nacu_engine::Response, WaitError>)> = Vec::new();
    loop {
        let arrivals = {
            let mut inbox = shard.inbox.lock().expect("inbox lock");
            if inbox.closed && inbox.entries.is_empty() && set.is_empty() {
                return;
            }
            std::mem::take(&mut inbox.entries)
        };
        for entry in arrivals {
            // The engine's monotonic request id is the routing key: it is
            // unique across every connection and already stamped on the
            // ticket, the trace spans, and the flight recorder.
            let key = entry.ticket.request_id();
            routes.insert(key, (entry.client_id, entry.conn));
            set.insert(key, entry.ticket);
        }
        completed.clear();
        if set.wait_completed(&mut completed) > 0 {
            metrics.record_async_dispatcher_batch();
        }
        for (key, outcome) in completed.drain(..) {
            let Some((client_id, conn)) = routes.remove(&key) else {
                continue;
            };
            conn.write_reply(&completion_reply(client_id, outcome, metrics), metrics);
            conn.release_slot();
        }
    }
}

/// Starts the serving plane for `handle` on `addr`.
///
/// # Errors
///
/// The bind failure from [`TcpListener::bind`], or `InvalidInput` when
/// the engine's format is wider than the wire's 16-bit codes.
pub fn serve(
    handle: &EngineHandle,
    addr: impl ToSocketAddrs,
    config: NetConfig,
) -> std::io::Result<NetServer> {
    if handle.format().total_bits() > 16 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "wire codes are i16: engine formats wider than 16 bits are not servable",
        ));
    }
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let metrics = handle.live_metrics();
    let buckets = config.quota.map(|quota| {
        Arc::new(Buckets {
            quota,
            by_ip: Mutex::new(HashMap::new()),
        })
    });
    let dispatchers = Arc::new(DispatcherPool::start(config.dispatchers, &metrics));
    let accept_thread = {
        let stop = Arc::clone(&stop);
        let handle = handle.clone();
        let config = config.clone();
        let dispatchers = Arc::clone(&dispatchers);
        thread::Builder::new()
            .name("nacu-net-accept".into())
            .spawn(move || {
                accept_loop(
                    &listener,
                    &handle,
                    &metrics,
                    &config,
                    buckets,
                    &dispatchers,
                    &stop,
                );
            })?
    };
    Ok(NetServer {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        dispatchers: Some(dispatchers),
    })
}

#[allow(clippy::needless_pass_by_value, clippy::too_many_arguments)]
fn accept_loop(
    listener: &TcpListener,
    handle: &EngineHandle,
    metrics: &Arc<EngineMetrics>,
    config: &NetConfig,
    buckets: Option<Arc<Buckets>>,
    dispatchers: &Arc<DispatcherPool>,
    stop: &Arc<AtomicBool>,
) {
    let live = Arc::new(AtomicUsize::new(0));
    let next_conn_id = AtomicU32::new(1);
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if live.load(Ordering::Acquire) >= config.max_connections {
            metrics.record_net_connection_rejected();
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        metrics.record_net_connection_accepted();
        live.fetch_add(1, Ordering::AcqRel);
        let conn_id = next_conn_id.fetch_add(1, Ordering::Relaxed);
        let handle = handle.clone();
        let metrics = Arc::clone(metrics);
        let config = config.clone();
        let buckets = buckets.clone();
        let dispatchers = Arc::clone(dispatchers);
        let conn_live = Arc::clone(&live);
        let spawned = thread::Builder::new()
            .name(format!("nacu-net-conn-{conn_id}"))
            .spawn(move || {
                serve_connection(
                    stream,
                    conn_id,
                    &handle,
                    &metrics,
                    &config,
                    buckets,
                    &dispatchers,
                );
                conn_live.fetch_sub(1, Ordering::AcqRel);
            });
        if spawned.is_err() {
            live.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    conn_id: u32,
    handle: &EngineHandle,
    metrics: &Arc<EngineMetrics>,
    config: &NetConfig,
    buckets: Option<Arc<Buckets>>,
    dispatchers: &Arc<DispatcherPool>,
) {
    let Ok(write_half) = stream.try_clone() else {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    };
    let conn = Arc::new(Conn::new(write_half));
    read_loop(
        stream,
        conn_id,
        handle,
        metrics,
        config,
        buckets,
        &conn,
        dispatchers,
    );
    // In-flight replies (if any) are still owned by the dispatchers,
    // which hold the write half through `conn` until they finish.
}

/// Decode → admission → submit, blocking on the in-flight bound.
#[allow(clippy::too_many_arguments)]
fn read_loop(
    stream: TcpStream,
    conn_id: u32,
    handle: &EngineHandle,
    metrics: &Arc<EngineMetrics>,
    config: &NetConfig,
    buckets: Option<Arc<Buckets>>,
    conn: &Arc<Conn>,
    dispatchers: &Arc<DispatcherPool>,
) {
    let peer_ip = stream.peer_addr().map(|a| a.ip()).ok();
    let mut reader = std::io::BufReader::new(stream);
    let max_payload = max_request_payload(config.max_frame_ops);
    loop {
        let payload = match read_payload(&mut reader, max_payload) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean EOF
            Err(ReadError::Oversize { .. }) => {
                metrics.record_net_protocol_error();
                conn.write_reply(
                    &ReplyFrame::control(Status::Error, code::PROTOCOL, 0),
                    metrics,
                );
                return;
            }
            Err(ReadError::TruncatedFrame { .. } | ReadError::Io(_)) => {
                // The stream died mid-frame: nothing to answer to.
                metrics.record_net_protocol_error();
                return;
            }
        };
        let frame = match decode_request(&payload, config.max_frame_ops) {
            Ok(frame) => frame,
            Err(_) => {
                metrics.record_net_protocol_error();
                conn.write_reply(
                    &ReplyFrame::control(Status::Error, code::PROTOCOL, 0),
                    metrics,
                );
                return; // cannot resync a corrupt stream
            }
        };
        metrics.record_net_frame_in();
        match admit(frame, conn_id, handle, metrics, config, &buckets, peer_ip) {
            Admission::Immediate(frame) => conn.write_reply(&frame, metrics),
            Admission::InFlight { client_id, ticket } => {
                if !conn.acquire_slot(config.max_inflight_per_conn) {
                    return; // connection died while parked on the bound
                }
                let entry = RouteEntry {
                    client_id,
                    ticket,
                    conn: Arc::clone(conn),
                };
                if dispatchers.submit(entry).is_err() {
                    // Pool already drained (server shutdown): the ticket
                    // is dropped, the engine's reply is abandoned.
                    conn.release_slot();
                    conn.write_reply(
                        &ReplyFrame::control(Status::Error, code::SHUTTING_DOWN, client_id),
                        metrics,
                    );
                }
            }
        }
        if conn.dead.load(Ordering::Acquire) {
            return;
        }
    }
}

enum Admission {
    /// Answered without touching the engine (or rejected by it).
    Immediate(ReplyFrame),
    /// Enqueued; a dispatcher owns writing the completion reply.
    InFlight { client_id: u64, ticket: Ticket },
}

fn admit(
    frame: RequestFrame,
    conn_id: u32,
    handle: &EngineHandle,
    metrics: &Arc<EngineMetrics>,
    _config: &NetConfig,
    buckets: &Option<Arc<Buckets>>,
    peer_ip: Option<IpAddr>,
) -> Admission {
    let client_id = frame.id;
    // Quota before any per-operand work: refusals must stay cheap.
    if let (Some(buckets), Some(ip)) = (buckets.as_ref(), peer_ip) {
        if !buckets.admit(ip) {
            metrics.record_net_quota_limited();
            return Admission::Immediate(ReplyFrame::control(Status::Quota, code::NONE, client_id));
        }
    }
    // Deadline shedding: refuse work the hardware model says cannot
    // finish in budget. `modeled_batch_cycles / PAPER_CLOCK_HZ` is the
    // floor a batch of this shape costs on one unit with zero queueing,
    // so any budget below it is deterministically unmeetable.
    let budget = (frame.deadline_micros > 0).then(|| Duration::from_micros(frame.deadline_micros));
    if let Some(budget) = budget {
        let floor_secs =
            modeled_batch_cycles(frame.function, frame.codes.len()) as f64 / PAPER_CLOCK_HZ;
        if budget.as_secs_f64() < floor_secs {
            metrics.record_net_request_shed();
            return Admission::Immediate(ReplyFrame::control(Status::Shed, code::NONE, client_id));
        }
    }
    let operands = match frame.operands() {
        Ok(operands) => operands,
        Err(_) => {
            metrics.record_net_protocol_error();
            return Admission::Immediate(ReplyFrame::control(
                Status::Error,
                code::PROTOCOL,
                client_id,
            ));
        }
    };
    let mut request = nacu_engine::Request::new(frame.function, operands).with_client(conn_id);
    if let Some(budget) = budget {
        request = request.with_deadline(Instant::now() + budget);
    }
    match handle.submit(request) {
        Ok(ticket) => Admission::InFlight { client_id, ticket },
        Err(SubmitError::Busy { .. }) => {
            Admission::Immediate(ReplyFrame::control(Status::Busy, code::NONE, client_id))
        }
        Err(SubmitError::ShuttingDown) => Admission::Immediate(ReplyFrame::control(
            Status::Error,
            code::SHUTTING_DOWN,
            client_id,
        )),
        Err(SubmitError::Invalid(_)) => Admission::Immediate(ReplyFrame::control(
            Status::Error,
            code::INVALID_REQUEST,
            client_id,
        )),
    }
}

/// Maps one ticket outcome onto its wire reply.
fn completion_reply(
    client_id: u64,
    outcome: Result<nacu_engine::Response, WaitError>,
    metrics: &EngineMetrics,
) -> ReplyFrame {
    match outcome {
        Ok(response) => ReplyFrame {
            status: Status::Ok,
            code: code::NONE,
            id: client_id,
            codes: response.outputs.iter().map(|fx| fx.raw() as i16).collect(),
        },
        Err(WaitError::DeadlineExpired) => {
            metrics.record_net_request_shed();
            ReplyFrame::control(Status::Shed, code::NONE, client_id)
        }
        Err(WaitError::EngineShutDown) => {
            ReplyFrame::control(Status::Error, code::SHUTTING_DOWN, client_id)
        }
        Err(WaitError::FaultDetected { .. } | WaitError::NoHealthyWorkers) => {
            ReplyFrame::control(Status::Error, code::FAULT, client_id)
        }
        Err(WaitError::Timeout) => ReplyFrame::control(Status::Error, code::INTERNAL, client_id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_admits_burst_then_refuses() {
        let buckets = Buckets {
            quota: Quota {
                rate_per_sec: 0.0001, // effectively no refill inside a test
                burst: 3.0,
            },
            by_ip: Mutex::new(HashMap::new()),
        };
        let ip: IpAddr = "127.0.0.1".parse().unwrap();
        assert!(buckets.admit(ip));
        assert!(buckets.admit(ip));
        assert!(buckets.admit(ip));
        assert!(!buckets.admit(ip), "burst exhausted");
        let other: IpAddr = "10.0.0.1".parse().unwrap();
        assert!(buckets.admit(other), "buckets are per client");
    }

    #[test]
    fn token_bucket_refills_over_time() {
        let buckets = Buckets {
            quota: Quota {
                rate_per_sec: 1_000_000.0,
                burst: 1.0,
            },
            by_ip: Mutex::new(HashMap::new()),
        };
        let ip: IpAddr = "127.0.0.1".parse().unwrap();
        assert!(buckets.admit(ip));
        thread::sleep(Duration::from_millis(2));
        assert!(buckets.admit(ip), "refilled after waiting");
    }

    #[test]
    fn default_config_is_sane() {
        let c = NetConfig::default();
        assert!(c.max_connections > 0);
        assert!(c.max_frame_ops > 0);
        assert!(c.max_inflight_per_conn > 0);
        assert!(c.quota.is_none());
        assert!(c.dispatchers > 0);
    }

    /// Closed shards refuse new routes instead of dropping them, and a
    /// drained pool joins cleanly.
    #[test]
    fn dispatcher_pool_drains_in_flight_work_on_shutdown() {
        let metrics = Arc::new(EngineMetrics::new());
        let pool = DispatcherPool::start(2, &metrics);
        // A pool with nothing in flight shuts down without hanging.
        pool.shutdown();

        let pool = DispatcherPool::start(1, &metrics);
        pool.shards[0].inbox.lock().expect("inbox lock").closed = true;
        let (ticket, _completer) = Ticket::detached(1);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let entry = RouteEntry {
            client_id: 7,
            ticket,
            conn: Arc::new(Conn::new(stream)),
        };
        assert!(pool.submit(entry).is_err(), "closed shard refuses routes");
        pool.shutdown();
    }
}
