//! `nacu-net` — the TCP wire protocol and admission-controlled network
//! serving plane for the NACU engine.
//!
//! Until this crate, the only way into the engine was an in-process
//! [`nacu_engine::EngineHandle::submit`] call. `nacu-net` puts the
//! serving stack on a socket, std-only like everything else:
//!
//! * [`proto`] — the length-prefixed binary batch protocol: one frame
//!   per request (magic, version, function id, Qm.f format tag,
//!   client request id, relative deadline, raw i16 codes), one frame
//!   per reply (status, detail code, echoed id, output codes). Typed
//!   encode/decode with exhaustive error variants; malformed bytes
//!   never panic.
//! * [`server`] — a TCP listener with per-connection pipelining (many
//!   in-flight ids per socket, replies in completion order) and layered
//!   admission control: per-client token-bucket quotas, deadline-based
//!   load shedding against the modeled hardware floor, the engine's
//!   exact `Busy` backpressure surfaced as a typed BUSY frame, and a
//!   bounded connection limit.
//! * [`client`] — a blocking pipelined client for examples, tests and
//!   the `net_loadgen` bench bin.
//!
//! Start a plane with [`ServeNet::serve_net`] on any engine handle; it
//! mirrors `serve_obs`. Every admission outcome lands in the engine's
//! `net_*` counters, so the `/metrics` scrape and CI exporters see the
//! network plane for free, and submit/reply flight-recorder spans carry
//! the connection id.

pub mod client;
pub mod proto;
pub mod server;

pub use client::{ClientError, NetClient};
pub use proto::{
    code, decode_reply, decode_request, encode_reply, encode_request, DecodeError, ReadError,
    ReplyFrame, RequestFrame, Status, MAGIC, VERSION,
};
pub use server::{serve, NetConfig, NetServer, Quota};

use nacu_engine::EngineHandle;

/// Extension trait putting `serve_net` on [`EngineHandle`], mirroring
/// `serve_obs`. (An inherent method is impossible: `nacu-net` depends
/// on the engine, not the other way around.)
pub trait ServeNet {
    /// Starts the network serving plane on `addr` with default tunables.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, or `InvalidInput` for engine
    /// formats wider than the wire's 16-bit codes.
    fn serve_net(&self, addr: impl std::net::ToSocketAddrs) -> std::io::Result<NetServer>;

    /// As [`ServeNet::serve_net`] with explicit tunables.
    ///
    /// # Errors
    ///
    /// As [`ServeNet::serve_net`].
    fn serve_net_with(
        &self,
        addr: impl std::net::ToSocketAddrs,
        config: NetConfig,
    ) -> std::io::Result<NetServer>;
}

impl ServeNet for EngineHandle {
    fn serve_net(&self, addr: impl std::net::ToSocketAddrs) -> std::io::Result<NetServer> {
        serve(self, addr, NetConfig::default())
    }

    fn serve_net_with(
        &self,
        addr: impl std::net::ToSocketAddrs,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        serve(self, addr, config)
    }
}
