//! Property tests for the wire protocol: every encodable frame decodes
//! back to itself, and no byte mutation of a valid frame (or arbitrary
//! garbage) can make the decoder panic — it always answers with a typed
//! [`DecodeError`] or a (different but valid) frame.

use nacu::Function;
use nacu_fixed::QFormat;
use nacu_net::proto::{
    code, decode_reply, decode_request, encode_reply, encode_request, ReplyFrame, RequestFrame,
    Status,
};
use proptest::prelude::*;

const MAX_OPS: u32 = 1 << 16;

fn function_from(pick: u64) -> Function {
    match pick % 4 {
        0 => Function::Sigmoid,
        1 => Function::Tanh,
        2 => Function::Exp,
        _ => Function::Softmax,
    }
}

fn status_from(pick: u64) -> Status {
    match pick % 5 {
        0 => Status::Ok,
        1 => Status::Busy,
        2 => Status::Shed,
        3 => Status::Quota,
        _ => Status::Error,
    }
}

proptest! {
    #[test]
    fn request_frames_round_trip(
        pick in proptest::num::u64::ANY,
        id in proptest::num::u64::ANY,
        deadline in proptest::num::u64::ANY,
        codes in proptest::collection::vec(-32768_i64..=32767, 1..300),
    ) {
        let frame = RequestFrame {
            function: function_from(pick),
            format: QFormat::new(4, 11).unwrap(),
            id,
            deadline_micros: deadline,
            codes: codes.iter().map(|&c| c as i16).collect(),
        };
        let bytes = encode_request(&frame);
        let decoded = decode_request(&bytes[4..], MAX_OPS).expect("valid frame");
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn reply_frames_round_trip(
        pick in proptest::num::u64::ANY,
        id in proptest::num::u64::ANY,
        detail in 0_i64..=255,
        codes in proptest::collection::vec(-32768_i64..=32767, 0..300),
    ) {
        let status = status_from(pick);
        let frame = ReplyFrame {
            status,
            code: detail as u8,
            id,
            codes: codes.iter().map(|&c| c as i16).collect(),
        };
        let bytes = encode_reply(&frame);
        let decoded = decode_reply(&bytes[4..]).expect("valid frame");
        prop_assert_eq!(decoded, frame);
    }

    /// Single-byte corruption of a valid request never panics the
    /// decoder: it either fails typed or decodes as some other valid
    /// frame (corrupting an operand byte, say, still decodes).
    #[test]
    fn corrupted_requests_decode_or_fail_typed(
        at in proptest::num::u64::ANY,
        xor in 1_i64..=255,
        codes in proptest::collection::vec(-32768_i64..=32767, 1..40),
    ) {
        let frame = RequestFrame {
            function: Function::Exp,
            format: QFormat::new(4, 11).unwrap(),
            id: 5,
            deadline_micros: 0,
            codes: codes.iter().map(|&c| c as i16).collect(),
        };
        let mut bytes = encode_request(&frame);
        let payload_len = bytes.len() - 4;
        let at = 4 + (at as usize) % payload_len;
        bytes[at] ^= xor as u8;
        // Typed result either way; a panic fails the test.
        let _ = decode_request(&bytes[4..], MAX_OPS);
    }

    /// Arbitrary garbage never panics either decoder.
    #[test]
    fn garbage_never_panics_decoders(
        bytes in proptest::collection::vec(0_i64..=255, 0..200),
    ) {
        let payload: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let _ = decode_request(&payload, MAX_OPS);
        let _ = decode_reply(&payload);
    }

    /// Truncating a valid frame's payload at any point fails typed.
    #[test]
    fn truncated_requests_fail_typed(
        cut in proptest::num::u64::ANY,
        codes in proptest::collection::vec(-32768_i64..=32767, 1..40),
    ) {
        let frame = RequestFrame {
            function: Function::Sigmoid,
            format: QFormat::new(4, 11).unwrap(),
            id: 1,
            deadline_micros: 7,
            codes: codes.iter().map(|&c| c as i16).collect(),
        };
        let bytes = encode_request(&frame);
        let payload = &bytes[4..];
        let cut = (cut as usize) % payload.len(); // strictly shorter
        prop_assert!(decode_request(&payload[..cut], MAX_OPS).is_err());
    }
}

#[test]
fn status_bytes_round_trip_and_unknowns_fail() {
    for status in [
        Status::Ok,
        Status::Busy,
        Status::Shed,
        Status::Quota,
        Status::Error,
    ] {
        assert_eq!(Status::from_u8(status as u8), Some(status));
    }
    for byte in 5..=u8::MAX {
        assert_eq!(Status::from_u8(byte), None);
    }
    // The detail-code namespace stays dense and stable.
    assert_eq!(code::NONE, 0);
    assert_eq!(code::PROTOCOL, 4);
}
