//! Fuzz-style robustness tests: a live serving plane fed truncated and
//! garbage byte streams must answer with typed frames (or close
//! cleanly), never hang a worker — the engine keeps serving in-process
//! work bit-identically throughout.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use nacu::{Function, NacuConfig};
use nacu_engine::{Engine, EngineConfig, Request};
use nacu_fixed::{Fx, QFormat};
use nacu_net::proto::{code, decode_reply, encode_request, RequestFrame, Status};
use nacu_net::{NetClient, NetConfig, ServeNet};

fn engine() -> Engine {
    Engine::new(
        EngineConfig::new(NacuConfig::paper_16bit())
            .with_workers(2)
            .with_queue_capacity(64),
    )
    .expect("paper config")
}

fn ramp(fmt: QFormat, n: usize) -> Vec<Fx> {
    (0..n)
        .map(|i| Fx::from_raw((i as i64 % 65) - 32, fmt).expect("small raw"))
        .collect()
}

/// The engine must still serve after a hostile connection — the real
/// assertion behind every test here.
fn assert_engine_alive(engine: &Engine) {
    let fmt = engine.format();
    let response = engine
        .submit(Request::new(Function::Sigmoid, ramp(fmt, 8)))
        .expect("submit after abuse")
        .wait_timeout(Duration::from_secs(5))
        .expect("serve after abuse");
    assert_eq!(response.outputs.len(), 8);
}

#[test]
fn garbage_stream_gets_protocol_error_and_close() {
    let engine = engine();
    let server = engine.handle().serve_net("127.0.0.1:0").expect("bind");
    let mut client = NetClient::connect(server.addr()).expect("connect");
    // A plausible length prefix followed by garbage.
    let mut bytes = 40_u32.to_le_bytes().to_vec();
    bytes.extend(std::iter::repeat_n(0xAB, 40));
    client.send_raw(&bytes).expect("write garbage");
    let reply = client.recv().expect("typed error reply");
    assert_eq!(reply.status, Status::Error);
    assert_eq!(reply.code, code::PROTOCOL);
    assert_eq!(reply.id, 0, "no id recoverable from garbage");
    // The server closed the stream after the error frame.
    assert!(client.recv().is_err());
    assert_engine_alive(&engine);
    let m = engine.metrics();
    assert!(m.net_protocol_errors >= 1);
}

#[test]
fn oversize_length_prefix_is_refused_without_allocation() {
    let engine = engine();
    let server = engine
        .handle()
        .serve_net_with(
            "127.0.0.1:0",
            NetConfig {
                max_frame_ops: 16,
                ..NetConfig::default()
            },
        )
        .expect("bind");
    let mut client = NetClient::connect(server.addr()).expect("connect");
    client
        .send_raw(&u32::MAX.to_le_bytes())
        .expect("hostile length");
    let reply = client.recv().expect("typed error reply");
    assert_eq!(reply.status, Status::Error);
    assert_eq!(reply.code, code::PROTOCOL);
    assert_engine_alive(&engine);
}

#[test]
fn truncated_frame_mid_payload_closes_without_stalling_workers() {
    let engine = engine();
    let server = engine.handle().serve_net("127.0.0.1:0").expect("bind");
    let fmt = engine.format();
    let good = encode_request(&RequestFrame {
        function: Function::Tanh,
        format: fmt,
        id: 1,
        deadline_micros: 0,
        codes: vec![0; 16],
    });
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(&good[..good.len() / 2]).expect("half");
    drop(stream); // die mid-frame
                  // No reply is possible; the server must just release the slot.
    assert_engine_alive(&engine);
}

#[test]
fn byte_mutations_of_valid_frames_never_hang_the_server() {
    let engine = engine();
    let server = engine.handle().serve_net("127.0.0.1:0").expect("bind");
    let fmt = engine.format();
    let good = encode_request(&RequestFrame {
        function: Function::Exp,
        format: fmt,
        id: 9,
        deadline_micros: 0,
        codes: vec![1, -2, 3],
    });
    // Flip one byte at a time across the envelope fields; every mutant
    // gets a connection and must be answered or cleanly dropped.
    for at in 4..nacu_net::proto::REQUEST_HEADER_LEN + 4 {
        let mut mutant = good.clone();
        mutant[at] ^= 0x80;
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        stream.write_all(&mutant).expect("send mutant");
        let _ = stream.shutdown(std::net::Shutdown::Write);
        // Read whatever comes back until close; must not time out.
        let mut sink = Vec::new();
        stream
            .read_to_end(&mut sink)
            .expect("server answers or closes");
        // Any reply bytes must decode as a typed frame.
        if sink.len() >= 4 {
            let declared = u32::from_le_bytes(sink[..4].try_into().unwrap()) as usize;
            assert!(sink.len() >= 4 + declared, "whole frame written");
            decode_reply(&sink[4..4 + declared]).expect("typed reply frame");
        }
    }
    assert_engine_alive(&engine);
}

#[test]
fn mixed_garbage_after_valid_traffic_poisons_only_its_own_connection() {
    let engine = engine();
    let server = engine.handle().serve_net("127.0.0.1:0").expect("bind");
    let fmt = engine.format();
    let mut healthy = NetClient::connect(server.addr()).expect("healthy client");
    let mut hostile = NetClient::connect(server.addr()).expect("hostile client");

    let id = healthy
        .send(Function::Sigmoid, &ramp(fmt, 4), 0)
        .expect("send");
    let reply = healthy.recv().expect("recv");
    assert_eq!(reply.id, id);
    assert_eq!(reply.status, Status::Ok);

    hostile
        .send_raw(b"\x08\x00\x00\x00GARBAGE!")
        .expect("garbage");
    let poisoned = hostile.recv().expect("typed error");
    assert_eq!(poisoned.status, Status::Error);

    // The healthy connection is unaffected.
    let id = healthy
        .send(Function::Softmax, &ramp(fmt, 6), 0)
        .expect("send again");
    let reply = healthy.recv().expect("recv again");
    assert_eq!(reply.id, id);
    assert_eq!(reply.status, Status::Ok);
    assert_eq!(reply.codes.len(), 6);
    assert_engine_alive(&engine);
}
