//! Value-generation strategies (the `proptest::strategy` subset).
//!
//! A [`Strategy`] here is just a sampler: it draws one value per case from
//! the test's deterministic RNG. There is no value tree and no shrinking —
//! the trade the offline shim makes for zero dependencies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (mirrors `Strategy::boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of one value (mirrors `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Any value of an integer type, uniformly over all bit patterns.
#[derive(Debug, Clone, Copy)]
pub struct AnyInt<T>(PhantomData<T>);

impl<T> AnyInt<T> {
    /// The canonical instance (`proptest::num::<ty>::ANY`).
    #[must_use]
    pub const fn new() -> Self {
        Self(PhantomData)
    }
}

impl<T> Default for AnyInt<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for AnyInt<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Strategy for AnyInt<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// `Vec` strategy from [`crate::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, len: Range<usize>) -> Self {
        assert!(len.start < len.end, "empty length range");
        Self { element, len }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + (rng.next_u64() % span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (*self.start() as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start() + unit * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1_000 {
            let v = (10_i64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0.5_f64..=1.0).generate(&mut rng);
            assert!((0.5..=1.0).contains(&w));
        }
    }

    #[test]
    fn prop_map_and_union_compose() {
        let strat = Union::new(vec![
            (0_u8..4).prop_map(|v| v * 2).boxed(),
            Just(99_u8).boxed(),
        ]);
        let mut rng = TestRng::for_test("prop_map_and_union_compose");
        let mut saw_mapped = false;
        let mut saw_just = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                99 => saw_just = true,
                v if v < 8 && v % 2 == 0 => saw_mapped = true,
                v => panic!("unexpected value {v}"),
            }
        }
        assert!(saw_mapped && saw_just);
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let strat = crate::collection::vec(0_u8..10, 2..5);
        let mut rng = TestRng::for_test("vec_strategy_respects_length_range");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
