//! The per-test runner state: deterministic RNG and case budget.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was filtered out by `prop_assume!` — try another.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Number of cases each property runs, from `PROPTEST_CASES` (default 64).
#[must_use]
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// The deterministic RNG driving one property test.
///
/// Seeded from an FNV-1a hash of the fully qualified test name, so every
/// test sees its own reproducible stream and failures rerun identically.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for the named test.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: StdRng::seed_from_u64(hash),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
