//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the API subset the workspace's property tests use — the [`proptest!`]
//! macro, range/tuple/`prop_map`/`prop_oneof!`/collection strategies, and
//! the `prop_assert*` family — over a deterministic per-test RNG.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the panic message only; the
//!   generated inputs are printed so the case can be pinned manually.
//! * **Deterministic seeding.** Each test derives its seed from its own
//!   name, so failures reproduce across runs without a regressions file
//!   (`*.proptest-regressions` files are ignored).
//! * Case count defaults to 64 and is overridable with `PROPTEST_CASES`.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (mirrors `proptest::collection`).

    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy for `Vec`s with lengths drawn from `len` and elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy::new(element, len)
    }
}

pub mod num {
    //! Numeric strategies (mirrors `proptest::num`).

    #[allow(non_snake_case)]
    pub mod i64 {
        use crate::strategy::AnyInt;

        /// Any `i64`, uniformly.
        pub const ANY: AnyInt<i64> = AnyInt::new();
    }

    #[allow(non_snake_case)]
    pub mod u64 {
        use crate::strategy::AnyInt;

        /// Any `u64`, uniformly.
        pub const ANY: AnyInt<u64> = AnyInt::new();
    }
}

pub mod prelude {
    //! One-stop imports for writing property tests.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies for a configurable
/// number of cases and runs the body on each.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                while ran < cases {
                    attempts += 1;
                    assert!(
                        attempts < cases.saturating_mul(20).max(1000),
                        "too many rejected cases (prop_assume filters too aggressively)"
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => ran += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` failed on case {} (attempt {}): {}\n\
                                 (deterministic seed: rerun reproduces; no shrinking in the offline proptest shim)",
                                stringify!($name),
                                ran + 1,
                                attempts,
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if l == r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

/// Discards the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
