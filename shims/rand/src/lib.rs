//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the *API subset it actually uses* — `StdRng::seed_from_u64`,
//! `Rng::gen_range` over half-open ranges, and `Rng::gen::<bool>()` — as a
//! tiny deterministic implementation. The generator is xoshiro256++ seeded
//! through SplitMix64 (the same construction the real `StdRng` family is
//! built on, though the output stream differs). Every consumer in this
//! repository seeds explicitly, so runs remain reproducible.
//!
//! This is **not** a cryptographic RNG and does not try to be; it exists so
//! the experiments build and run hermetically.

use std::ops::Range;

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range. Panics on an empty range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(&range, self)
    }

    /// Samples a value from the "standard" distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// The SplitMix64 step used for seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators (mirrors `rand::rngs`).

    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `range` using `rng`'s bits.
    fn sample_range<R: RngCore>(range: &Range<Self>, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(range: &Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(range: &Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = range.start + unit * (range.end - range.start);
        // Guard the open upper bound against rounding.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore>(range: &Range<Self>, rng: &mut R) -> Self {
        let wide = f64::sample_range(&(f64::from(range.start)..f64::from(range.end)), rng);
        wide as f32
    }
}

/// Types drawable from the standard distribution (mirrors
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// One standard-distribution sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0_u64..1_000_000), b.gen_range(0_u64..1_000_000));
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0_u64..1 << 32) == b.gen_range(0_u64..1 << 32))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5_f64..3.75);
            assert!((-2.5..3.75).contains(&v));
        }
    }

    #[test]
    fn integer_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0_usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_draws_both_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..1_000).filter(|_| rng.gen::<bool>()).count();
        assert!((200..800).contains(&trues));
    }
}
