//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate implements
//! the API subset the workspace's `benches/` use — `Criterion`,
//! `benchmark_group`/`bench_function`, `Bencher::{iter, iter_batched}` and
//! the `criterion_group!`/`criterion_main!` macros — over plain
//! `std::time::Instant` timing. It reports the mean and minimum time per
//! iteration; there is no warm-up analysis, outlier rejection, or HTML
//! report. Good enough to compare orders of magnitude, which is all the
//! repo's benches are used for offline.

use std::time::{Duration, Instant};

/// How `iter_batched` inputs are grouped. The shim times each routine
/// invocation individually regardless, so the variants only mirror the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&name.into(), self.sample_size, f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, name.into()),
            self.sample_size,
            f,
        );
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

fn run_bench(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    let n = b.samples.len().max(1);
    let total: Duration = b.samples.iter().sum();
    let mean = total / n as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!("bench {label:<60} mean {mean:>12.3?}  min {min:>12.3?}  ({n} samples)");
}

/// Times closures (mirrors `criterion::Bencher`).
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` for the configured number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warm-up pass to populate caches and lazy state.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Groups benchmark functions under one entry point (mirrors
/// `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the given groups (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0_u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_separates_setup_from_routine() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut setups = 0_u32;
        let mut routines = 0_u32;
        group.bench_function("batched", |b| {
            b.iter_batched(|| setups += 1, |()| routines += 1, BatchSize::SmallInput);
        });
        group.finish();
        assert_eq!(setups, 3);
        assert_eq!(routines, 3);
    }
}
