//! Umbrella crate for the NACU reproduction workspace: re-exports every member crate.
pub use nacu;
pub use nacu_baselines as baselines;
pub use nacu_fixed as fixed;
pub use nacu_funcapprox as funcapprox;
pub use nacu_hwmodel as hwmodel;
pub use nacu_nn as nn;
