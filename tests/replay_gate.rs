//! Integration gate for the record/replay harness: the committed golden
//! trace must decode and replay bit-identically on freshly built engines
//! regardless of pool width or fast path, recording must be
//! deterministic, a deliberately perturbed datapath must fail the diff,
//! and the recorder ring must drop-count instead of blocking when full.

use nacu::{Function, NacuConfig};
use nacu_bench::replay_bench::{
    observable_bias_lsb_plan, perturbed_config, record_mixed_workload, record_stamped_workload,
    replay_on_engine, replay_on_engine_paced, WorkloadSpec,
};
use nacu_engine::{Engine, EngineConfig, Request, TraceLog};
use nacu_fixed::{Fx, Rounding};

fn base() -> EngineConfig {
    EngineConfig::new(NacuConfig::paper_16bit())
        .with_workers(2)
        .with_queue_capacity(256)
}

fn golden() -> TraceLog {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/ci/REPLAY_golden.trace");
    let bytes = std::fs::read(path).expect("committed golden trace exists");
    TraceLog::decode(&bytes, 1 << 16).expect("committed golden trace decodes")
}

#[test]
fn golden_trace_replays_bit_identically_across_engine_configs() {
    let log = golden();
    assert!(!log.records.is_empty());
    for function in [
        Function::Sigmoid,
        Function::Tanh,
        Function::Exp,
        Function::Softmax,
    ] {
        assert!(
            log.records.iter().any(|r| r.function == function),
            "golden trace exercises {function}"
        );
    }
    for config in [
        base().with_workers(1).with_fast_path(false),
        base().with_workers(4).with_fast_path(true),
    ] {
        let engine = Engine::new(config).expect("replay engine");
        let outcome = replay_on_engine(&log, &engine.handle(), 64).expect("replay runs");
        assert!(
            outcome.is_bit_identical(),
            "golden trace diverged: {:?}",
            outcome.divergence
        );
        assert_eq!(outcome.records, log.records.len());
        let snapshot = engine.shutdown();
        assert_eq!(snapshot.replay_requests_replayed, log.records.len() as u64);
        assert_eq!(snapshot.replay_divergences, 0);
    }
}

#[test]
fn recording_the_same_workload_twice_is_byte_identical() {
    let spec = WorkloadSpec::tiny();
    let first = record_mixed_workload(spec, base());
    let second = record_mixed_workload(spec, base());
    assert_eq!(first.encode(), second.encode());
}

/// Paced replay must stay bit-identical in both regimes: against the
/// committed golden (timing-stripped, so pacing degenerates to an
/// ordinary replay) and against a freshly recorded stamped trace, where
/// the recorded inter-arrival gaps stretch the replay's wall clock.
#[test]
fn paced_replay_stays_bit_identical_with_and_without_stamps() {
    let log = golden();
    assert!(
        log.records.iter().all(|r| r.submit_micros == 0),
        "the committed golden must be timing-stripped"
    );
    let engine = Engine::new(base()).expect("replay engine");
    let outcome = replay_on_engine_paced(&log, &engine.handle(), 64).expect("paced replay runs");
    assert!(outcome.is_bit_identical(), "{:?}", outcome.divergence);
    assert_eq!(outcome.records, log.records.len());
    engine.shutdown();

    let gap = std::time::Duration::from_millis(2);
    let stamped = record_stamped_workload(WorkloadSpec::tiny(), base(), gap);
    assert!(stamped.records.iter().skip(1).any(|r| r.submit_micros > 0));
    let engine = Engine::new(base()).expect("replay engine");
    let started = std::time::Instant::now();
    let outcome =
        replay_on_engine_paced(&stamped, &engine.handle(), 64).expect("paced replay runs");
    let elapsed = started.elapsed();
    assert!(outcome.is_bit_identical(), "{:?}", outcome.divergence);
    // n records leave n-1 recorded gaps of ≥ `gap` each to re-apply.
    let budget = gap * (stamped.records.len() as u32 - 1);
    assert!(
        elapsed >= budget,
        "paced replay finished in {elapsed:?}, under the {budget:?} of recorded gaps"
    );
    engine.shutdown();
}

#[test]
fn perturbed_datapath_fails_the_golden_diff() {
    let log = golden();
    let plan = observable_bias_lsb_plan(NacuConfig::paper_16bit(), &log)
        .expect("a 1-LSB LUT-bias flip the golden trace observes");
    let engine = Engine::new(perturbed_config(base(), plan)).expect("perturbed engine");
    let outcome = replay_on_engine(&log, &engine.handle(), 64).expect("replay runs");
    let divergence = outcome.divergence.expect("1-LSB perturbation must diverge");
    assert_eq!(log.records[divergence.index].id, divergence.id);
    let snapshot = engine.shutdown();
    assert_eq!(snapshot.replay_divergences, 1);
}

#[test]
fn full_recorder_ring_drops_newest_and_counts_instead_of_blocking() {
    let engine = Engine::new(base().with_recording(1)).expect("recording engine");
    let fmt = engine.format();
    let handle = engine.handle();
    let x = Fx::from_f64(0.5, fmt, Rounding::Nearest);
    for _ in 0..3 {
        handle
            .submit_wait(Request::new(Function::Sigmoid, vec![x]))
            .expect("served");
    }
    let recorder = handle.recorder().expect("recorder present");
    let snapshot = engine.shutdown();
    assert_eq!(snapshot.replay_records_captured, 1);
    assert_eq!(snapshot.replay_records_dropped, 2);
    let log = recorder.take_log();
    assert_eq!(log.records.len(), 1);
    assert_eq!(log.records[0].responses.len(), 1);
}
