//! End-to-end integration: a trained MLP executed on the CGRA fabric must
//! reach the same decisions as the `nacu-nn` reference execution.

use std::sync::Arc;

use nacu::{Nacu, NacuConfig};
use nacu_cgra::mapper::{self, convention, MappedActivation};
use nacu_cgra::Fabric;
use nacu_fixed::Fx;
use nacu_nn::activation::{NacuActivation, Nonlinearity};
use nacu_nn::dense::{Dense, LayerActivation};
use nacu_nn::{data, train};

/// Runs one dense layer (`outputs × inputs` weights, row-major) on a row
/// of cells, one neuron per cell, returning the outputs.
fn fabric_dense(
    fabric: &mut Fabric,
    weights: &[f64],
    biases: &[f64],
    inputs: &[Fx],
    activation: MappedActivation,
) -> Vec<Fx> {
    let outputs = biases.len();
    let n_in = inputs.len();
    let fmt = fabric.cell((0, 0)).format();
    for neuron in 0..outputs {
        for (j, &x) in inputs.iter().enumerate() {
            fabric
                .cell_mut((0, neuron))
                .set_reg(convention::input(j), x);
        }
        let w = &weights[neuron * n_in..(neuron + 1) * n_in];
        fabric.load(
            (0, neuron),
            mapper::compile_dense(w, biases[neuron], activation, fmt),
        );
    }
    fabric.run_to_quiescence(100_000);
    (0..outputs)
        .map(|neuron| fabric.cell((0, neuron)).reg(convention::output()))
        .collect()
}

#[test]
fn fabric_hidden_layer_is_bit_identical_to_the_nn_layer() {
    let dataset = data::gaussian_blobs(40, 3, 5.0, 21);
    let trained = train::train_mlp(&dataset, 6, 30, 0.05, 4);
    let (w1, b1, _, _) = trained.parameters();
    let nacu = Arc::new(Nacu::new(NacuConfig::paper_16bit()).expect("paper config"));
    let fmt = nacu.config().format;
    let layer = Dense::from_f64(6, 2, w1, b1, LayerActivation::Tanh, fmt);
    let nl = NacuActivation::paper_16bit();
    let mut fabric = Fabric::new(1, 6, Arc::clone(&nacu));
    for features in dataset.features.iter().take(10) {
        let x = nacu_nn::tensor::quantize_vec(features, fmt);
        let golden = layer.forward(&x, &nl as &dyn Nonlinearity);
        let got = fabric_dense(&mut fabric, w1, b1, &x, MappedActivation::Tanh);
        assert_eq!(got, golden, "fabric layer must be bit-identical");
    }
}

#[test]
fn fabric_mlp_classifies_like_the_reference_network() {
    let dataset = data::gaussian_blobs(60, 3, 5.0, 33);
    let trained = train::train_mlp(&dataset, 6, 40, 0.05, 8);
    let (w1, b1, w2, b2) = trained.parameters();
    let nacu = Arc::new(Nacu::new(NacuConfig::paper_16bit()).expect("paper config"));
    let fmt = nacu.config().format;
    let fixed = trained.quantize(fmt);
    let nl = NacuActivation::paper_16bit();
    let mut fabric = Fabric::new(1, 6, Arc::clone(&nacu));
    let mut agree = 0;
    let total = 30;
    for features in dataset.features.iter().take(total) {
        let x = nacu_nn::tensor::quantize_vec(features, fmt);
        // Hidden layer on the fabric.
        let hidden = fabric_dense(&mut fabric, w1, b1, &x, MappedActivation::Tanh);
        // Head layer on the fabric (3 classes).
        let logits = fabric_dense(&mut fabric, w2, b2, &hidden, MappedActivation::Identity);
        // Distributed softmax over the logit row.
        for (i, &l) in logits.iter().enumerate() {
            fabric.cell_mut((0, i)).set_reg(convention::value(), l);
        }
        for (i, p) in mapper::compile_softmax_row(logits.len())
            .into_iter()
            .enumerate()
        {
            fabric.load((0, i), p);
        }
        fabric.run_to_quiescence(100_000);
        let fabric_class = (0..logits.len())
            .max_by_key(|&i| fabric.cell((0, i)).reg(convention::output()).raw())
            .expect("non-empty");
        let reference_class = fixed.classify(features, &nl as &dyn Nonlinearity);
        if fabric_class == reference_class {
            agree += 1;
        }
    }
    assert!(
        agree >= total - 1,
        "fabric and reference disagreed on {} of {total} samples",
        total - agree
    );
}
