//! End-to-end observability: a live engine scraped over real TCP.
//!
//! These tests exercise the whole monitoring stack the way an operator
//! would — submit work, bind the scrape server on a loopback port, fetch
//! `/metrics`, `/metrics.json`, `/health` and `/trace` with a raw
//! [`TcpStream`], and assert on the wire bytes:
//!
//! * the Prometheus exposition parses line by line and carries both the
//!   obs families and the engine's flat counters;
//! * the JSON document keeps the stable `nacu-obs/v1` schema;
//! * a clean pool under aggressive shadow sampling raises **zero** drift
//!   alarms (no false positives against the Eq. 7 bounds);
//! * an injected LUT-bias perturbation that the parity detectors are
//!   told to ignore latches a drift alarm visible in `/health`, the
//!   Prometheus output and the trace ring within one scrape.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use nacu::{Function, Nacu, NacuConfig};
use nacu_engine::InjectionSite;
use nacu_engine::{
    DetectorSet, Engine, EngineConfig, Fault, FaultPlan, FaultTolerance, LatencyBudget, Request,
    SloSpec, Stage, TraceKind,
};
use nacu_fixed::{Fx, QFormat, Rounding};

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect scrape server");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("response head");
    (
        head.lines().next().unwrap_or("").to_string(),
        body.to_string(),
    )
}

fn ramp(fmt: QFormat, n: usize) -> Vec<Fx> {
    (0..n)
        .map(|i| {
            let v = -6.0 + 12.0 * (i as f64) / (n - 1) as f64;
            Fx::from_f64(v, fmt, Rounding::Nearest)
        })
        .collect()
}

/// Every non-comment exposition line must be `name[{labels}] value` with
/// a parseable finite value — the contract a Prometheus server holds us
/// to.
fn assert_valid_prometheus(body: &str) {
    let mut samples = 0usize;
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("exposition line without a value: {line:?}");
        });
        let metric = name_part.split('{').next().unwrap_or("");
        assert!(
            !metric.is_empty()
                && metric
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name in line {line:?}"
        );
        let parsed: f64 = value
            .parse()
            .unwrap_or_else(|e| panic!("unparseable value in {line:?}: {e}"));
        assert!(parsed.is_finite(), "non-finite value in {line:?}");
        samples += 1;
    }
    assert!(
        samples > 20,
        "suspiciously small exposition: {samples} samples"
    );
}

#[test]
fn live_scrape_serves_valid_prometheus_and_stable_json() {
    let engine = Engine::new(
        EngineConfig::new(NacuConfig::paper_16bit())
            .with_workers(2)
            .with_health_sampling(8),
    )
    .expect("paper config");
    let fmt = engine.format();
    for function in [Function::Sigmoid, Function::Tanh, Function::Exp] {
        for _ in 0..4 {
            engine
                .submit(Request::new(function, ramp(fmt, 32)))
                .expect("submit")
                .wait()
                .expect("served");
        }
    }
    let server = engine
        .handle()
        .serve_obs("127.0.0.1:0")
        .expect("bind loopback scrape server");
    let addr = server.local_addr();

    let (status, prom) = get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_valid_prometheus(&prom);
    for needle in [
        "# TYPE nacu_obs_queue_wait_ns histogram",
        "# TYPE nacu_obs_end_to_end_ns histogram",
        "# TYPE nacu_obs_health_samples_total counter",
        "# TYPE nacu_obs_drift_alarms_total counter",
        "nacu_obs_drift_alarm_latched 0",
        "nacu_obs_health_sample_interval 8",
        "nacu_engine_requests_completed_total 12",
        "nacu_engine_drift_alarms_total 0",
        // Q4.11 with healthy workers: every one of the 12×32 unary
        // operands was served from the response tables.
        "nacu_engine_fast_path_ops_total 384",
    ] {
        assert!(prom.contains(needle), "missing {needle:?} in:\n{prom}");
    }

    let (status, json) = get(addr, "/metrics.json");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(json.contains("\"schema\": \"nacu-obs/v1\""), "{json}");
    assert!(json.contains("\"sample_interval\":8"), "{json}");
    // Both wire formats carry the same flat engine counters.
    assert!(
        json.contains("\"nacu_engine_requests_completed_total\":12"),
        "{json}"
    );

    let (status, health) = get(addr, "/health");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"workers\":2"), "{health}");

    // A clean pool under 1-in-8 sampling took real shadow samples and
    // raised no false alarms against the Eq. 7 bounds.
    let snap = engine.obs_snapshot();
    assert!(snap.health.total_samples() > 0, "sampling never ran");
    assert_eq!(snap.health.total_alarms(), 0, "false drift alarm");
    assert_eq!(engine.metrics().drift_alarms, 0);

    let (status, trace) = get(addr, "/trace");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(trace.contains("\"traceEvents\""), "{trace}");
    assert!(trace.contains("\"request sigmoid\""), "{trace}");

    drop(server);
    engine.shutdown();
}

/// Scraping `/metrics` while the pool is saturated must never stall a
/// worker: the queue-depth and high-water gauges are relaxed atomic
/// loads, not a lock shared with the submit path. The regression this
/// pins down — a scrape loop hammering the server while producers keep
/// the queue full — once serialised workers behind the queue's mutex;
/// now serving throughput must keep advancing *between* scrapes.
#[test]
fn metrics_scrapes_under_load_never_stall_serving() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    let engine = Engine::new(
        EngineConfig::new(NacuConfig::paper_16bit())
            .with_workers(2)
            .with_queue_capacity(8),
    )
    .expect("paper config");
    let fmt = engine.format();
    let server = engine
        .handle()
        .serve_obs("127.0.0.1:0")
        .expect("bind loopback scrape server");
    let addr = server.local_addr();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Two producers keep the tiny queue saturated (Busy rejections
        // are expected and fine — pressure is the point).
        for _ in 0..2 {
            let handle = engine.handle();
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match handle.submit(Request::new(Function::Sigmoid, ramp(fmt, 16))) {
                        Ok(ticket) => {
                            let _ = ticket.wait_timeout(Duration::from_secs(5));
                        }
                        Err(_) => std::thread::yield_now(),
                    }
                }
            });
        }

        // Hammer /metrics while the pool is under pressure. Every scrape
        // must answer promptly, and completions must advance across the
        // scrape storm — workers never wait on the scraper.
        let completed_before = engine.metrics().requests_completed;
        let started = Instant::now();
        for _ in 0..40 {
            let (status, prom) = get(addr, "/metrics");
            assert_eq!(status, "HTTP/1.1 200 OK");
            assert!(
                prom.contains("nacu_engine_queue_depth_high_water"),
                "{prom}"
            );
        }
        let scrape_wall = started.elapsed();
        assert!(
            scrape_wall < Duration::from_secs(20),
            "40 scrapes took {scrape_wall:?}: a scrape blocked on serving"
        );
        // Serving progressed while we scraped.
        let deadline = Instant::now() + Duration::from_secs(10);
        while engine.metrics().requests_completed <= completed_before {
            assert!(
                Instant::now() < deadline,
                "no request completed during/after the scrape storm"
            );
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    let m = engine.metrics();
    assert!(m.requests_completed > 0);
    assert!(
        m.queue_depth_high_water > 0,
        "the queue was never under pressure"
    );
    drop(server);
    engine.shutdown();
}

/// A telemetry-enabled engine exposes the whole windowed plane over the
/// wire: `/slo` flips 200 → 503 under a latency-spike storm and the v2
/// JSON schema carries the burning state, windowed series and the tagged
/// tail exemplar — while the default-config test above keeps seeing the
/// byte-stable v1 document.
#[test]
fn live_slo_endpoint_degrades_under_burn_and_serves_v2_schema() {
    let fast = Duration::from_millis(50);
    let slow = Duration::from_millis(200);
    let engine = Engine::new(
        EngineConfig::new(NacuConfig::paper_16bit())
            .with_workers(2)
            .with_telemetry(Duration::from_millis(5))
            .with_slos(vec![SloSpec::latency(
                "e2e_p99",
                Stage::EndToEnd,
                Function::Sigmoid,
                0.99,
                LatencyBudget::Nanos(1_000_000),
                10.0,
            )
            .with_windows(fast, slow)]),
    )
    .expect("paper config");
    let fmt = engine.format();
    for _ in 0..8 {
        engine
            .submit(Request::new(Function::Sigmoid, ramp(fmt, 16)))
            .expect("submit")
            .wait()
            .expect("served");
    }
    let server = engine
        .handle()
        .serve_obs("127.0.0.1:0")
        .expect("bind loopback scrape server");
    let addr = server.local_addr();

    // Clean traffic: the plane is enabled and not burning.
    let deadline = Instant::now() + Duration::from_secs(5);
    let body = loop {
        let (status, body) = get(addr, "/slo");
        if status == "HTTP/1.1 200 OK" {
            break body;
        }
        assert!(Instant::now() < deadline, "/slo never settled: {body}");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(body.contains("\"enabled\":true"), "{body}");

    // Storm: tail samples far past the 1 ms budget, tagged with a
    // request id and connection so the exemplar is attributable.
    let obs = engine.obs();
    for i in 0..400u64 {
        obs.record_latency_tagged(Stage::EndToEnd, Function::Sigmoid, 5_000_000, i + 1, 7);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let body = loop {
        let (status, body) = get(addr, "/slo");
        if status == "HTTP/1.1 503 Service Unavailable" {
            break body;
        }
        assert!(Instant::now() < deadline, "/slo never burned: {body}");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        body.contains("\"name\":\"e2e_p99\",\"active\":true"),
        "{body}"
    );

    // Both wire formats carry the alarm, the rolling windows and the
    // tagged exemplar; the JSON document bumped to the v2 schema.
    let (status, prom) = get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_valid_prometheus(&prom);
    for needle in [
        "nacu_obs_slo_alarm_active{slo=\"e2e_p99\"} 1",
        "nacu_obs_window_requests{window=\"10s\"}",
        "nacu_obs_exemplar_ns{stage=\"end_to_end_ns\",function=\"sigmoid\"",
        "conn=\"7\"",
    ] {
        assert!(prom.contains(needle), "missing {needle:?} in:\n{prom}");
    }
    let (status, json) = get(addr, "/metrics.json");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(json.contains("\"schema\": \"nacu-obs/v2\""), "{json}");
    assert!(json.contains("\"burning\":true"), "{json}");

    // Must-clear: the sampler keeps ticking on the idle engine, the
    // spike ages out of the 50/200 ms windows and the alarm drops.
    let deadline = Instant::now() + Duration::from_secs(10);
    let body = loop {
        let (status, body) = get(addr, "/slo");
        if status == "HTTP/1.1 200 OK" {
            break body;
        }
        assert!(Instant::now() < deadline, "/slo never recovered: {body}");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(!body.contains("\"active\":true"), "{body}");
    assert!(
        engine.metrics().slo_alarm_trips > 0,
        "trip edge not latched"
    );
    // The lifetime report now carries per-window rows.
    let report = engine.lifetime_report();
    assert!(format!("{report}").contains("[10s]"), "{report}");

    drop(server);
    engine.shutdown();
}

#[test]
fn injected_lut_bias_drift_latches_an_alarm_within_one_scrape() {
    let config = NacuConfig::paper_16bit();
    // Corrupt the bias word of the segment serving x = 0.5 by bit 4
    // (2⁻⁹ in Q2.13, ≈ 4 output LSB) — beyond the Eq. 7 sigmoid bound
    // even against the clean fit's worst case — and disarm the parity
    // detectors so only the shadow sampler can catch it.
    let golden = Nacu::new(config).expect("paper config");
    let x = Fx::from_f64(0.5, config.format, Rounding::Nearest);
    let entry = golden.lookup_index(golden.magnitude_raw(x));
    let clean_bias = golden.coefficients()[entry].1;
    let engine = Engine::new(
        EngineConfig::new(config)
            .with_workers(1)
            .with_health_sampling(1)
            .with_fault_tolerance(FaultTolerance {
                detectors: DetectorSet::none(),
                plans: vec![FaultPlan::single(Fault::stuck_lut(
                    InjectionSite::LutBias,
                    entry,
                    4,
                    (clean_bias >> 4) & 1 == 0,
                ))],
                ..FaultTolerance::default()
            }),
    )
    .expect("paper config");
    engine
        .submit(Request::new(Function::Sigmoid, vec![x; 4]))
        .expect("submit")
        .wait()
        .expect("served despite the silent corruption");

    let server = engine
        .handle()
        .serve_obs("127.0.0.1:0")
        .expect("bind loopback scrape server");
    let addr = server.local_addr();

    let (status, health) = get(addr, "/health");
    assert_eq!(status, "HTTP/1.1 503 Service Unavailable", "{health}");
    assert!(health.contains("\"status\":\"degraded\""), "{health}");
    assert!(health.contains("\"drift_alarm_latched\":true"), "{health}");

    let (_, prom) = get(addr, "/metrics");
    assert!(prom.contains("nacu_obs_drift_alarm_latched 1"), "{prom}");
    assert!(
        prom.contains("nacu_obs_drift_alarms_total{function=\"sigmoid\"} 4"),
        "{prom}"
    );
    assert!(prom.contains("nacu_engine_drift_alarms_total 4"), "{prom}");

    // The flight recorder saw the alarm too.
    let drift_events = engine
        .obs()
        .drain_trace(usize::MAX)
        .into_iter()
        .filter(|e| matches!(e.kind, TraceKind::DriftAlarm { .. }))
        .count();
    assert_eq!(drift_events, 4);

    drop(server);
    engine.shutdown();
}
