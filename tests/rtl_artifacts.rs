//! Integration tests over the exported hardware artefacts: the Verilog
//! bundle and the VCD traces must stay consistent with the functional
//! model they were generated from.

use nacu::pipeline::NacuPipeline;
use nacu::{vcd, verilog, Function, Nacu, NacuConfig};
use nacu_fixed::{Fx, Rounding};

#[test]
fn verilog_rom_encodes_every_model_coefficient() {
    let config = NacuConfig::paper_16bit();
    let text = verilog::coeff_rom(config).expect("paper config exports");
    let nacu = Nacu::new(config).expect("paper config builds");
    for (i, (m1, q)) in nacu.coefficients().iter().enumerate() {
        let m_hex = format!("16'h{:04X}", (*m1 as u64) & 0xFFFF);
        let q_hex = format!("16'h{:04X}", (*q as u64) & 0xFFFF);
        assert!(text.contains(&m_hex), "entry {i}: slope {m_hex} missing");
        assert!(text.contains(&q_hex), "entry {i}: bias {q_hex} missing");
    }
}

#[test]
fn verilog_exports_scale_with_configuration() {
    let small = verilog::coeff_rom(NacuConfig::paper_16bit().with_lut_entries(8))
        .expect("small config exports");
    let large = verilog::coeff_rom(NacuConfig::paper_16bit().with_lut_entries(64))
        .expect("large config exports");
    assert!(large.lines().count() > small.lines().count());
    // Address width grows with the table: 3 bits vs 6 bits.
    assert!(small.contains("parameter ADDR = 3"));
    assert!(large.contains("parameter ADDR = 6"));
}

#[test]
fn vcd_trace_round_trips_result_words() {
    let nacu = Nacu::new(NacuConfig::paper_16bit()).expect("paper config");
    let fmt = nacu.config().format;
    let golden: Vec<Fx> = (0..8)
        .map(|i| Fx::from_f64(f64::from(i) * 0.7 - 2.0, fmt, Rounding::Nearest))
        .collect();
    let expected: Vec<u64> = golden
        .iter()
        .map(|&x| {
            let y = nacu.tanh(x);
            (y.raw() as u64) & 0xFFFF
        })
        .collect();
    let mut pipe = NacuPipeline::new(nacu);
    let text = vcd::trace_batch(&mut pipe, Function::Tanh, &golden);
    // Every expected output word appears as a binary change on signal '$'
    // (the fourth declared signal, y).
    for (i, word) in expected.iter().enumerate() {
        let needle = format!("b{word:b} $");
        assert!(text.contains(&needle), "result {i} ({needle}) not traced");
    }
}

#[test]
fn bias_unit_verilog_parameters_track_the_bias_format() {
    let nacu = Nacu::new(NacuConfig::paper_16bit()).expect("paper config");
    let bias_fmt = nacu.bias_format();
    let text = verilog::bias_units(16, bias_fmt.frac_bits());
    assert!(text.contains(&format!("parameter FRAC = {}", bias_fmt.frac_bits())));
}
