//! Cross-crate fault-tolerance acceptance tests: the campaign's coverage
//! guarantees and the engine's graceful degradation, exercised through
//! the public APIs exactly as a deployment would compose them.

use nacu::{Function, Nacu, NacuConfig};
use nacu_bench::fault_campaign::{self, CampaignConfig, Outcome};
use nacu_engine::{Engine, EngineConfig, Fault, FaultPlan, FaultTolerance, InjectionSite};
use nacu_faults::FaultKind;
use nacu_fixed::{Fx, Rounding};
use nacu_nn::engine::EngineActivation;

fn campaign() -> CampaignConfig {
    // Every LUT entry at four bit positions, stuck-at both ways: enough
    // to exercise a large slice of the table against a real workload
    // while staying test-sized.
    CampaignConfig {
        bit_stride: 8,
        entry_stride: 1,
        operands_per_trial: 24,
        functions: vec![Function::Sigmoid],
        kinds: vec![FaultKind::StuckAt0, FaultKind::StuckAt1],
        ..CampaignConfig::full()
    }
}

/// The headline acceptance criterion: at least 99% of effective
/// single-bit LUT faults are caught by parity (measured: 100%).
#[test]
fn campaign_meets_the_lut_coverage_gate() {
    let report = fault_campaign::run(&campaign());
    assert!(
        report.lut_coverage() >= 0.99,
        "single-bit LUT coverage {:.4} below the 99% gate",
        report.lut_coverage()
    );
    let parity_hits = report
        .detector_hits
        .iter()
        .find(|(label, _)| *label == "lut_parity")
        .map_or(0, |&(_, n)| n);
    assert!(parity_hits > 0, "the gate must not pass vacuously");
}

/// The second half of the criterion: every injected-and-undetected fault
/// is quantified — each silent trial carries real error statistics.
#[test]
fn every_undetected_fault_is_quantified() {
    let report = fault_campaign::run(&campaign());
    for trial in report.silent() {
        match trial.outcome {
            Outcome::Silent { max_err, avg_err } => {
                assert!(
                    max_err.is_finite() && max_err > 0.0,
                    "unquantified silent fault: {trial:?}"
                );
                assert!(avg_err.is_finite() && avg_err > 0.0 && avg_err <= max_err);
            }
            _ => unreachable!(),
        }
    }
}

/// End-to-end graceful degradation through the `nacu-nn` adapter: a pool
/// with one broken shard serves a forward-pass activation batch
/// bit-identically to the sequential golden unit.
#[test]
fn degraded_pool_serves_golden_activations_end_to_end() {
    let config = NacuConfig::paper_16bit();
    let engine = Engine::new(
        EngineConfig::new(config)
            .with_workers(2)
            .with_queue_capacity(128)
            .with_fault_tolerance(FaultTolerance {
                plans: vec![
                    FaultPlan::single(Fault::stuck_lut(InjectionSite::LutBias, 0, 13, true)),
                    FaultPlan::new(),
                ],
                ..FaultTolerance::default()
            }),
    )
    .expect("paper config");
    let golden = Nacu::new(config).expect("paper config");
    let nl = EngineActivation::new(engine.handle());
    let xs: Vec<Fx> = (0..32)
        .map(|i| Fx::from_f64(f64::from(i) * 0.01 - 0.1, config.format, Rounding::Nearest))
        .collect();
    let expected: Vec<Fx> = xs.iter().map(|&x| golden.sigmoid(x)).collect();
    for _ in 0..100 {
        let outputs = nl
            .try_map_batch(Function::Sigmoid, &xs)
            .expect("a healthy shard always remains");
        assert_eq!(outputs, expected, "bit-identical despite the broken shard");
        if engine.metrics().workers_quarantined > 0 {
            break;
        }
    }
    // Whether or not the scheduler routed work onto the broken shard,
    // nothing corrupt ever escaped and no request failed.
    assert_eq!(engine.metrics().requests_failed, 0);
    engine.shutdown();
}
