//! Integration tests tying the functional model to the hardware cost
//! models: the cycle counts, areas and Table I rows must tell one story.

use nacu::pipeline::{self, NacuPipeline};
use nacu::{Function, Nacu, NacuConfig};
use nacu_fixed::{Fx, Rounding};
use nacu_hwmodel::area::NacuAreaModel;
use nacu_hwmodel::timing::{self, NacuFunction};
use nacu_hwmodel::{scaling, table1, TechNode};

#[test]
fn pipeline_latencies_agree_with_the_timing_model() {
    // Two independent crates encode Table I's latency row; they must match.
    assert_eq!(
        pipeline::latency_cycles(Function::Sigmoid),
        timing::latency_cycles(NacuFunction::Sigmoid)
    );
    assert_eq!(
        pipeline::latency_cycles(Function::Tanh),
        timing::latency_cycles(NacuFunction::Tanh)
    );
    assert_eq!(
        pipeline::latency_cycles(Function::Exp),
        timing::latency_cycles(NacuFunction::Exp)
    );
}

#[test]
fn table1_nacu_row_mirrors_the_functional_configuration() {
    let model = NacuAreaModel::paper_config();
    let row = table1::nacu_row(&model);
    let nacu = Nacu::new(NacuConfig::paper_16bit()).expect("paper config");
    assert_eq!(row.lut_entries, Some(nacu.lut_entries() as u32));
    assert_eq!(row.bits, "16");
    assert_eq!(
        nacu.config().format.total_bits(),
        16,
        "functional and cost models describe the same word width"
    );
}

#[test]
fn streamed_batch_cycle_count_converts_to_paper_throughput() {
    // 1000 sigmoids at one per cycle: 1002 cycles at 3.75 ns ≈ 3.76 µs.
    let nacu = Nacu::new(NacuConfig::paper_16bit()).expect("paper config");
    let fmt = nacu.config().format;
    let mut pipe = NacuPipeline::new(nacu);
    let xs: Vec<Fx> = (0..1000)
        .map(|i| Fx::from_f64(f64::from(i) * 0.01 - 5.0, fmt, Rounding::Nearest))
        .collect();
    let (results, cycles) = pipe.run_batch(Function::Sigmoid, &xs);
    assert_eq!(results.len(), 1000);
    let ns = cycles as f64 * timing::CLOCK_PERIOD_NS_28NM;
    assert!((ns - 3757.5).abs() < 1.0, "batch time {ns} ns");
}

#[test]
fn scaled_nacu_area_is_consistent_across_nodes() {
    let breakdown = NacuAreaModel::paper_config().breakdown();
    let at_65 = breakdown.total_um2_at(TechNode::N65);
    let back = scaling::scale_area(at_65, TechNode::N65, TechNode::N28);
    assert!((back - breakdown.total_um2()).abs() < 1e-6);
}

#[test]
fn softmax_schedule_has_the_modelled_cost() {
    // The timing model prices an n-vector softmax at two pipelined passes;
    // the functional model must actually produce n results for that price.
    let nacu = Nacu::new(NacuConfig::paper_16bit()).expect("paper config");
    let fmt = nacu.config().format;
    let n = 10;
    let xs: Vec<Fx> = (0..n)
        .map(|i| Fx::from_f64(f64::from(i) * 0.3, fmt, Rounding::Nearest))
        .collect();
    let out = nacu.softmax(&xs).expect("non-empty");
    assert_eq!(out.len(), n as usize);
    let cycles = timing::softmax_latency_cycles(n);
    assert!(cycles >= 2 * n, "two passes over the vector");
}
