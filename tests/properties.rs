//! Workspace-level property tests: invariants that must hold across crate
//! boundaries for arbitrary inputs.

use nacu::{Nacu, NacuConfig};
use nacu_fixed::{Fx, QFormat, Rounding};
use proptest::prelude::*;

fn paper_nacu() -> Nacu {
    Nacu::new(NacuConfig::paper_16bit()).expect("paper config")
}

proptest! {
    #[test]
    fn sigmoid_output_is_always_in_unit_interval(raw in -32768_i64..=32767) {
        let nacu = paper_nacu();
        let fmt = nacu.config().format;
        let y = nacu.sigmoid(Fx::from_raw(raw, fmt).expect("in range"));
        prop_assert!(y.to_f64() >= 0.0);
        prop_assert!(y.to_f64() <= 1.0);
    }

    #[test]
    fn tanh_output_is_always_in_biunit_interval(raw in -32768_i64..=32767) {
        let nacu = paper_nacu();
        let fmt = nacu.config().format;
        let y = nacu.tanh(Fx::from_raw(raw, fmt).expect("in range"));
        prop_assert!(y.to_f64() >= -1.0);
        prop_assert!(y.to_f64() <= 1.0);
    }

    #[test]
    fn exp_output_is_in_unit_interval_for_normalised_inputs(raw in -32768_i64..=0) {
        let nacu = paper_nacu();
        let fmt = nacu.config().format;
        let y = nacu.exp(Fx::from_raw(raw, fmt).expect("in range"));
        prop_assert!(y.to_f64() >= 0.0);
        prop_assert!(y.to_f64() <= 1.0 + fmt.resolution());
    }

    #[test]
    fn sigmoid_is_monotone_nondecreasing(
        a in -32768_i64..=32767,
        b in -32768_i64..=32767,
    ) {
        let nacu = paper_nacu();
        let fmt = nacu.config().format;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let y_lo = nacu.sigmoid(Fx::from_raw(lo, fmt).expect("in range"));
        let y_hi = nacu.sigmoid(Fx::from_raw(hi, fmt).expect("in range"));
        prop_assert!(y_lo.raw() <= y_hi.raw() + 1, "one LSB of segment-boundary slack");
    }

    #[test]
    fn softmax_sums_to_one_for_arbitrary_vectors(
        vals in proptest::collection::vec(-8.0_f64..8.0, 2..12),
    ) {
        let nacu = paper_nacu();
        let fmt = nacu.config().format;
        let xs: Vec<Fx> = vals.iter().map(|&v| Fx::from_f64(v, fmt, Rounding::Nearest)).collect();
        let out = nacu.softmax(&xs).expect("non-empty");
        let sum: f64 = out.iter().map(Fx::to_f64).sum();
        prop_assert!((sum - 1.0).abs() < 0.03, "sum {sum}");
        // And the max logit keeps the max probability.
        let argmax_in = vals.iter().enumerate().max_by(|x, y| x.1.total_cmp(y.1)).unwrap().0;
        let argmax_out = out.iter().enumerate().max_by(|x, y| x.1.partial_cmp(y.1).unwrap()).unwrap().0;
        let max_in = vals[argmax_in];
        let tied = vals.iter().filter(|&&v| (v - max_in).abs() < 0.01).count() > 1;
        prop_assert!(tied || argmax_in == argmax_out);
    }

    #[test]
    fn restoring_divider_agrees_with_integer_division(
        numer in 0_i64..100_000,
        denom in 1_i64..100_000,
        frac in 0_u32..16,
    ) {
        let got = nacu::divider::restoring_divide(numer, denom, frac).expect("denom > 0");
        let want = ((numer as i128) << frac) / denom as i128;
        prop_assert_eq!(got as i128, want);
    }

    #[test]
    fn bias_units_equal_arithmetic_for_random_operands(
        frac in 4_u32..=14,
        q_scaled in 0.5_f64..=1.0,
    ) {
        let one = 1_i64 << frac;
        let q_raw = (q_scaled * one as f64).round() as i64;
        prop_assert_eq!(nacu::bias::one_minus_q(q_raw, frac), one - q_raw);
        prop_assert_eq!(nacu::bias::two_q_minus_one(q_raw, frac), 2 * q_raw - one);
        prop_assert_eq!(nacu::bias::one_minus_two_q(q_raw, frac), one - 2 * q_raw);
    }

    #[test]
    fn every_eq7_width_builds_a_working_unit(width in 6_u32..=22) {
        let cfg = NacuConfig::for_width(width).expect("Eq. 7 solvable");
        let nacu = Nacu::new(cfg).expect("builds");
        let fmt = nacu.config().format;
        let x = Fx::zero(fmt);
        prop_assert!((nacu.sigmoid(x).to_f64() - 0.5).abs() < 0.02);
        prop_assert!((nacu.exp(x).to_f64() - 1.0).abs() < 0.02);
    }

    #[test]
    fn lstm_outputs_stay_bounded_for_any_weights(
        seed in 0_u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let fmt = QFormat::new(4, 11).expect("Q4.11");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut vals = |n: usize| -> Vec<f64> {
            (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect()
        };
        let (inputs, hidden) = (2, 3);
        let cell = nacu_nn::lstm::LstmCell::from_f64(
            inputs, hidden,
            &vals(4 * hidden * inputs), &vals(4 * hidden * hidden), &vals(4 * hidden),
            fmt,
        );
        let nl = nacu_nn::activation::NacuActivation::paper_16bit();
        let seq: Vec<Vec<Fx>> = (0..5)
            .map(|_| nacu_nn::tensor::quantize_vec(&vals(inputs), fmt))
            .collect();
        let state = cell.run(&seq, &nl);
        for h in &state.h {
            // h = o·tanh(c): both factors bounded by 1.
            prop_assert!(h.to_f64().abs() <= 1.0 + fmt.resolution());
        }
    }
}
