//! Cross-crate integration tests: the NACU model driving real workloads.

use nacu::{Nacu, NacuConfig};
use nacu_fixed::{Fx, QFormat, Rounding};
use nacu_funcapprox::metrics;
use nacu_funcapprox::reference::{self, RefFunc};
use nacu_funcapprox::UniformPwl;
use nacu_nn::activation::{NacuActivation, Nonlinearity, ReferenceActivation};
use nacu_nn::{data, train};

fn paper_nacu() -> Nacu {
    Nacu::new(NacuConfig::paper_16bit()).expect("paper config")
}

#[test]
fn nacu_positive_sigma_matches_a_standalone_pwl_table() {
    // The datapath's positive-range σ is, by construction, a 53-entry PWL
    // table; the funcapprox crate builds the same thing independently.
    // Their swept errors must land in the same decade.
    let nacu = paper_nacu();
    let fmt = nacu.config().format;
    let pwl = UniformPwl::fit(RefFunc::Sigmoid, 53, fmt, fmt).expect("valid table");
    let table_report = metrics::sweep(&pwl, RefFunc::Sigmoid);
    let datapath_report = metrics::sweep_fn(fmt, RefFunc::Sigmoid, |x| nacu.sigmoid(x).to_f64());
    assert!(datapath_report.max_error < 3.0 * table_report.max_error);
    assert!(table_report.max_error < 3.0 * datapath_report.max_error);
}

#[test]
fn quantised_mlp_with_nacu_matches_reference_accuracy() {
    let dataset = data::gaussian_blobs(400, 3, 5.0, 17);
    let (train_set, test_set) = dataset.split(0.75);
    let trained = train::train_mlp(&train_set, 8, 60, 0.05, 3);
    let fmt = QFormat::new(4, 11).expect("Q4.11");
    let fixed = trained.quantize(fmt);
    let reference_nl = ReferenceActivation::new(fmt);
    let nacu_nl = NacuActivation::paper_16bit();
    let acc_ref = fixed.accuracy(&test_set, &reference_nl as &dyn Nonlinearity);
    let acc_nacu = fixed.accuracy(&test_set, &nacu_nl as &dyn Nonlinearity);
    assert!(acc_ref > 0.9, "reference accuracy {acc_ref}");
    assert!(
        (acc_nacu - acc_ref).abs() <= 0.03,
        "NACU {acc_nacu} vs reference {acc_ref}"
    );
}

#[test]
fn softmax_classification_agrees_sample_by_sample() {
    // Beyond aggregate accuracy: the argmax decision must agree on almost
    // every individual sample.
    let dataset = data::xor_clouds(300, 5);
    let trained = train::train_mlp(&dataset, 12, 120, 0.05, 9);
    let fmt = QFormat::new(4, 11).expect("Q4.11");
    let fixed = trained.quantize(fmt);
    let reference_nl = ReferenceActivation::new(fmt);
    let nacu_nl = NacuActivation::paper_16bit();
    let disagreements = dataset
        .features
        .iter()
        .filter(|f| {
            fixed.classify(f, &reference_nl as &dyn Nonlinearity)
                != fixed.classify(f, &nacu_nl as &dyn Nonlinearity)
        })
        .count();
    assert!(
        disagreements * 50 <= dataset.len(),
        "{disagreements}/{} samples decided differently",
        dataset.len()
    );
}

#[test]
fn full_function_suite_respects_published_error_decades() {
    let nacu = paper_nacu();
    let fmt = nacu.config().format;
    let sig =
        metrics::sweep_raw_range(fmt, fmt.min_raw(), fmt.max_raw(), reference::sigmoid, |x| {
            nacu.sigmoid(x).to_f64()
        });
    let tanh = metrics::sweep_raw_range(
        fmt,
        fmt.min_raw(),
        fmt.max_raw(),
        |x| x.tanh(),
        |x| nacu.tanh(x).to_f64(),
    );
    let exp =
        metrics::sweep_raw_range(fmt, fmt.min_raw(), 0, |x| x.exp(), |x| nacu.exp(x).to_f64());
    // §VII: RMSE 2.07e-4 (σ) and 2.09e-4 (tanh) at 16 bits.
    assert!(sig.rmse < 4e-4, "sigma rmse {}", sig.rmse);
    assert!(tanh.rmse < 5e-4, "tanh rmse {}", tanh.rmse);
    assert!(sig.correlation > 0.999 && tanh.correlation > 0.999);
    // Eq. 16: the exp error is bounded by ~4x the sigma error.
    assert!(
        exp.max_error < 4.0 * sig.max_error + 4.0 * fmt.resolution(),
        "exp max {} vs 4x sigma max {}",
        exp.max_error,
        sig.max_error
    );
}

#[test]
fn softmax_handles_every_degenerate_vector() {
    let nacu = paper_nacu();
    let fmt = nacu.config().format;
    let fx = |v: f64| Fx::from_f64(v, fmt, Rounding::Nearest);
    // Uniform inputs → uniform distribution.
    let out = nacu.softmax(&[fx(1.0); 5]).expect("non-empty");
    for p in &out {
        assert!((p.to_f64() - 0.2).abs() < 0.01);
    }
    // Single input → probability 1.
    let out = nacu.softmax(&[fx(-3.0)]).expect("non-empty");
    assert!((out[0].to_f64() - 1.0).abs() < 0.01);
    // Extreme separation → one-hot.
    let out = nacu.softmax(&[fx(15.9), fx(-16.0)]).expect("non-empty");
    assert!(out[0].to_f64() > 0.99);
    assert!(out[1].to_f64() < 0.01);
}

#[test]
fn bit_width_sweep_monotonically_improves_rmse() {
    let mut last = f64::INFINITY;
    for width in [10u32, 12, 14, 16, 18] {
        let nacu = Nacu::new(NacuConfig::for_width(width).expect("width ok")).expect("builds");
        let fmt = nacu.config().format;
        let report =
            metrics::sweep_raw_range(fmt, fmt.min_raw(), fmt.max_raw(), reference::sigmoid, |x| {
                nacu.sigmoid(x).to_f64()
            });
        assert!(
            report.rmse < last,
            "width {width}: rmse {} should beat {last}",
            report.rmse
        );
        last = report.rmse;
    }
}
