//! End-to-end acceptance for the network serving plane: pipelined TCP
//! clients get bit-identical outputs to the sequential [`Nacu`] unit,
//! every admission refusal is a typed frame on a surviving connection,
//! and the `net_*` counters land in both `/metrics` wire formats.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use nacu::{Function, Nacu, NacuConfig};
use nacu_engine::{Engine, EngineConfig, Request, SubmitError, TraceKind};
use nacu_fixed::{Fx, QFormat, Rounding};
use nacu_net::{NetClient, ServeNet, Status};

const WIRE_FUNCTIONS: [Function; 4] = [
    Function::Sigmoid,
    Function::Tanh,
    Function::Exp,
    Function::Softmax,
];

fn engine() -> Engine {
    Engine::new(
        EngineConfig::new(NacuConfig::paper_16bit())
            .with_workers(2)
            .with_queue_capacity(256),
    )
    .expect("paper config")
}

/// Distinct per-client operand ramps so every request has its own golden
/// answer. Exp operands stay ≤ 0, the normalised domain of Eq. 12.
fn operands_for(fmt: QFormat, function: Function, client: usize, n: usize) -> Vec<Fx> {
    (0..n)
        .map(|i| {
            let t = (i as f64) / (n.max(2) - 1) as f64;
            let v = match function {
                Function::Exp => -8.0 * t - 0.01 * client as f64,
                _ => -6.0 + 12.0 * t + 0.05 * client as f64,
            };
            Fx::from_f64(v, fmt, Rounding::Nearest)
        })
        .collect()
}

fn golden_outputs(golden: &Nacu, function: Function, operands: &[Fx]) -> Vec<Fx> {
    match function {
        Function::Sigmoid => operands.iter().map(|&x| golden.sigmoid(x)).collect(),
        Function::Tanh => operands.iter().map(|&x| golden.tanh(x)).collect(),
        Function::Exp => operands.iter().map(|&x| golden.exp(x)).collect(),
        Function::Softmax => golden.softmax(operands).expect("golden softmax"),
        _ => unreachable!("not a wire function"),
    }
}

/// N pipelined TCP clients, mixed unary and softmax batches: every wire
/// output matches the sequential unit bit for bit, matched by request id
/// out of completion order.
#[test]
fn pipelined_clients_match_sequential_golden_bit_for_bit() {
    let engine = engine();
    let mut server = engine.handle().serve_net("127.0.0.1:0").expect("bind");
    let fmt = engine.format();
    let addr = server.addr();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|client_idx| {
                scope.spawn(move || {
                    let golden = Nacu::new(NacuConfig::paper_16bit()).expect("golden unit");
                    let mut client = NetClient::connect(addr).expect("connect");
                    // Pipeline 3 rounds of all four functions before
                    // reading a single reply.
                    let mut inflight = HashMap::new();
                    for round in 0..3 {
                        for function in WIRE_FUNCTIONS {
                            let operands = operands_for(fmt, function, client_idx, 16 + 4 * round);
                            let id = client.send(function, &operands, 0).expect("send");
                            inflight.insert(id, (function, operands));
                        }
                    }
                    for _ in 0..inflight.len() {
                        let reply = client.recv().expect("recv");
                        let (function, operands) =
                            inflight.remove(&reply.id).expect("reply echoes a known id");
                        assert_eq!(reply.status, Status::Ok, "{function:?}");
                        let outputs = reply.outputs(fmt).expect("decodable outputs");
                        assert_eq!(
                            outputs,
                            golden_outputs(&golden, function, &operands),
                            "client {client_idx} {function:?} diverged from the sequential unit"
                        );
                    }
                    assert!(inflight.is_empty());
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread");
        }
    });

    // The flight recorder tied those submissions to their connections.
    let conns: std::collections::HashSet<u32> = engine
        .obs()
        .drain_trace(usize::MAX)
        .into_iter()
        .filter_map(|e| match e.kind {
            TraceKind::Submit { conn, .. } if conn != 0 => Some(conn),
            _ => None,
        })
        .collect();
    assert_eq!(conns.len(), 4, "one connection id per client in the trace");

    server.shutdown();
    engine.shutdown();
}

/// 256 concurrent pipelined connections through the fixed dispatcher
/// pool: every socket keeps several requests in flight at once, yet the
/// reply plane runs on two dispatcher threads total — and every output
/// stays bit-identical to the sequential unit.
#[test]
fn two_hundred_fifty_six_connections_share_two_dispatchers() {
    const CONNS: usize = 256;
    const PIPELINED: usize = 4;

    // Queue sized for the full in-flight load (CONNS × PIPELINED): this
    // test is about the reply plane, so admission must never say BUSY.
    let engine = Engine::new(
        EngineConfig::new(NacuConfig::paper_16bit())
            .with_workers(2)
            .with_queue_capacity(2 * CONNS * PIPELINED),
    )
    .expect("paper config");
    let mut server = engine
        .handle()
        .serve_net_with(
            "127.0.0.1:0",
            nacu_net::NetConfig {
                max_connections: CONNS + 8,
                dispatchers: 2,
                ..nacu_net::NetConfig::default()
            },
        )
        .expect("bind");
    let fmt = engine.format();
    let addr = server.addr();
    let golden = Nacu::new(NacuConfig::paper_16bit()).expect("golden unit");

    // Phase 1: open every connection and pipeline its whole batch
    // before reading a single reply — all 256 sockets have work in
    // flight simultaneously.
    let mut clients: Vec<(NetClient, HashMap<u64, Vec<Fx>>)> = Vec::with_capacity(CONNS);
    for conn_idx in 0..CONNS {
        let mut client = NetClient::connect(addr).expect("connect");
        let mut inflight = HashMap::new();
        for round in 0..PIPELINED {
            let operands = operands_for(fmt, Function::Sigmoid, conn_idx, 8 + round);
            let id = client.send(Function::Sigmoid, &operands, 0).expect("send");
            inflight.insert(id, operands);
        }
        clients.push((client, inflight));
    }

    // Phase 2: drain every socket and check outputs bit-for-bit.
    for (client, inflight) in &mut clients {
        for _ in 0..PIPELINED {
            let reply = client.recv().expect("recv");
            assert_eq!(reply.status, Status::Ok);
            let operands = inflight.remove(&reply.id).expect("known id");
            assert_eq!(
                reply.outputs(fmt).expect("decodable outputs"),
                golden_outputs(&golden, Function::Sigmoid, &operands),
                "pipelined reply diverged from the sequential unit"
            );
        }
        assert!(inflight.is_empty());
    }

    // The async plane did the routing: wakers were registered for
    // in-flight tickets and dispatcher batches carried the replies.
    let snapshot = engine.metrics();
    assert!(
        snapshot.async_dispatcher_batches > 0,
        "replies must flow through the dispatcher pool"
    );

    server.shutdown();
    engine.shutdown();
}

/// A full engine queue answers with a typed BUSY frame — and the
/// connection survives to serve the retry.
#[test]
fn queue_full_answers_busy_frame_on_a_surviving_connection() {
    let engine = Engine::new(
        EngineConfig::new(NacuConfig::paper_16bit())
            .with_workers(1)
            .with_queue_capacity(1)
            .with_fast_path(false),
    )
    .expect("paper config");
    let mut server = engine.handle().serve_net("127.0.0.1:0").expect("bind");
    let fmt = engine.format();
    let handle = engine.handle();
    let mut client = NetClient::connect(server.addr()).expect("connect");
    let small = operands_for(fmt, Function::Sigmoid, 0, 8);

    // Pin the single worker on a long datapath softmax, then keep the
    // one-slot queue topped up in-process until a wire request bounces.
    let pinned = handle
        .submit(Request::new(
            Function::Softmax,
            operands_for(fmt, Function::Tanh, 0, 200_000),
        ))
        .expect("pin the worker");
    let mut fillers = Vec::new();
    let mut busy = None;
    'provoke: for _ in 0..100 {
        while fillers.len() < 64 {
            match handle.submit(Request::new(
                Function::Softmax,
                operands_for(fmt, Function::Tanh, 0, 20_000),
            )) {
                Ok(ticket) => fillers.push(ticket),
                Err(SubmitError::Busy { .. }) => break,
                Err(e) => panic!("unexpected refusal: {e}"),
            }
        }
        let reply = client.call(Function::Sigmoid, &small, 0).expect("probe");
        match reply.status {
            Status::Busy => {
                assert_eq!(reply.codes.len(), 0, "BUSY is a control frame");
                busy = Some(reply);
                break 'provoke;
            }
            Status::Ok => {} // queue drained between top-up and probe; retry
            other => panic!("unexpected status {other:?}"),
        }
    }
    let busy = busy.expect("queue-full wire request answered BUSY");
    assert_eq!(busy.status, Status::Busy);

    for ticket in fillers {
        let _ = ticket.wait();
    }
    let _ = pinned.wait();

    // Same socket, after the backlog drains: served normally.
    let reply = client.call(Function::Sigmoid, &small, 0).expect("retry");
    assert_eq!(reply.status, Status::Ok);
    assert_eq!(reply.codes.len(), 8);

    server.shutdown();
    engine.shutdown();
}

/// A deadline below the modeled hardware floor is refused with a typed
/// SHED frame before enqueueing; the connection keeps serving.
#[test]
fn unmeetable_deadline_answers_shed_frame() {
    let engine = engine();
    let mut server = engine.handle().serve_net("127.0.0.1:0").expect("bind");
    let fmt = engine.format();
    let mut client = NetClient::connect(server.addr()).expect("connect");

    let big = operands_for(fmt, Function::Softmax, 0, 4096);
    let reply = client.call(Function::Softmax, &big, 1).expect("shed call");
    assert_eq!(reply.status, Status::Shed);
    assert_eq!(reply.codes.len(), 0, "SHED is a control frame");

    // Generous deadlines pass; the connection is unharmed.
    let reply = client
        .call(Function::Softmax, &big, 5_000_000)
        .expect("generous deadline");
    assert_eq!(reply.status, Status::Ok);
    assert_eq!(reply.codes.len(), 4096);

    assert!(engine.metrics().net_requests_shed >= 1);
    server.shutdown();
    engine.shutdown();
}

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect scrape server");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("response head");
    (
        head.lines().next().unwrap_or("").to_string(),
        body.to_string(),
    )
}

const NET_COUNTERS: [&str; 7] = [
    "nacu_net_connections_accepted_total",
    "nacu_net_connections_rejected_total",
    "nacu_net_frames_in_total",
    "nacu_net_frames_out_total",
    "nacu_net_requests_shed_total",
    "nacu_net_quota_limited_total",
    "nacu_net_protocol_errors_total",
];

fn prom_value(body: &str, name: &str) -> u64 {
    body.lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} missing from exposition"))
        .trim()
        .parse()
        .expect("integer counter")
}

/// The wire plane's counters are visible — with the pinned names — in
/// both `/metrics` formats served by the observability scrape server.
#[test]
fn net_counters_land_in_both_metrics_wire_formats() {
    let engine = engine();
    let mut net = engine.handle().serve_net("127.0.0.1:0").expect("bind net");
    let obs = engine.handle().serve_obs("127.0.0.1:0").expect("bind obs");
    let fmt = engine.format();

    // Leave fingerprints on several counters: two served frames, one
    // shed, one protocol error.
    let mut client = NetClient::connect(net.addr()).expect("connect");
    let small = operands_for(fmt, Function::Sigmoid, 0, 8);
    assert_eq!(
        client
            .call(Function::Sigmoid, &small, 0)
            .expect("ok")
            .status,
        Status::Ok
    );
    assert_eq!(
        client
            .call(
                Function::Softmax,
                &operands_for(fmt, Function::Softmax, 0, 4096),
                1
            )
            .expect("shed")
            .status,
        Status::Shed
    );
    let mut hostile = NetClient::connect(net.addr()).expect("hostile");
    hostile
        .send_raw(b"\x08\x00\x00\x00NOTNACU!")
        .expect("garbage");
    assert_eq!(hostile.recv().expect("typed error").status, Status::Error);
    // The error frame is the last wire write; once it is readable the
    // counters below are already recorded.
    std::thread::sleep(Duration::from_millis(50));

    let (status, prom) = get(obs.local_addr(), "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    for name in NET_COUNTERS {
        assert!(
            prom.contains(&format!("{name} ")),
            "{name} missing:\n{prom}"
        );
    }
    assert!(prom_value(&prom, "nacu_net_connections_accepted_total") >= 2);
    assert!(prom_value(&prom, "nacu_net_frames_in_total") >= 2);
    assert!(prom_value(&prom, "nacu_net_frames_out_total") >= 3);
    assert!(prom_value(&prom, "nacu_net_requests_shed_total") >= 1);
    assert!(prom_value(&prom, "nacu_net_protocol_errors_total") >= 1);

    let (status, json) = get(obs.local_addr(), "/metrics.json");
    assert_eq!(status, "HTTP/1.1 200 OK");
    for name in NET_COUNTERS {
        assert!(
            json.contains(&format!("\"{name}\"")),
            "{name} missing:\n{json}"
        );
    }

    drop(obs);
    net.shutdown();
    engine.shutdown();
}
